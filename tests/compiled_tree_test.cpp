// CompiledTree correctness: the flat batched inference layout must produce
// predictions identical to DecisionTree::Classify for every tuple, every
// selector, and every scoring thread count.

#include "tree/compiled_tree.h"

#include <gtest/gtest.h>

#include "boat/builder.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "split/selector.h"
#include "tree/evaluation.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

void ExpectIdenticalPredictions(const DecisionTree& tree,
                                const std::vector<Tuple>& data) {
  const CompiledTree compiled(tree);
  ASSERT_EQ(compiled.num_nodes(), tree.num_nodes());
  // Single-tuple path.
  for (const Tuple& t : data) {
    ASSERT_EQ(compiled.Classify(t), tree.Classify(t));
  }
  // Batched path, at 1 / 2 / 8 scoring threads: identical outputs.
  const std::vector<int32_t> serial = compiled.Predict(data, 1);
  ASSERT_EQ(serial.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(serial[i], tree.Classify(data[i])) << "tuple " << i;
  }
  for (const int threads : {2, 8}) {
    const std::vector<int32_t> parallel = compiled.Predict(data, threads);
    ASSERT_EQ(parallel, serial) << "threads=" << threads;
  }
}

std::vector<Tuple> AgrawalData(int function, uint64_t n, uint64_t seed,
                               double noise = 0.05) {
  AgrawalConfig config;
  config.function = function;
  config.noise = noise;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

TEST(CompiledTreeTest, MatchesGiniTreeOnAgrawal) {
  const auto train = AgrawalData(6, 4000, 101);
  const auto test = AgrawalData(6, 2000, 202, 0.0);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, MatchesEntropyTreeOnAgrawal) {
  const auto train = AgrawalData(7, 4000, 303);
  const auto test = AgrawalData(7, 2000, 404, 0.0);
  auto selector = MakeEntropySelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, MatchesQuestTreeOnAgrawal) {
  const auto train = AgrawalData(5, 4000, 505);
  const auto test = AgrawalData(5, 2000, 606, 0.0);
  QuestSelector selector;
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, train);
  ExpectIdenticalPredictions(tree, test);
}

TEST(CompiledTreeTest, SingleLeafTree) {
  // A tree that never splits (all labels equal) compiles to one leaf.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back(Tuple({static_cast<double>(i)}, 1));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_EQ(tree.num_nodes(), 1u);
  const CompiledTree compiled(tree);
  EXPECT_EQ(compiled.num_nodes(), 1u);
  for (const Tuple& t : data) {
    EXPECT_EQ(compiled.Classify(t), 1);
  }
  ExpectIdenticalPredictions(tree, data);
}

TEST(CompiledTreeTest, EmptyBatch) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data = {Tuple({0.0}, 0), Tuple({5.0}, 1)};
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  const CompiledTree compiled(tree);
  const std::vector<Tuple> empty;
  EXPECT_TRUE(compiled.Predict(empty, 4).empty());
  EXPECT_EQ(compiled.MisclassificationRate(empty), 0.0);
}

TEST(CompiledTreeTest, CategoricalSubsetsAndOutOfDomainValues) {
  // Mixed schema with a categorical attribute; the compiled bitset probe
  // must agree with the subset binary search, including on category values
  // outside the declared domain (which always go right).
  Schema schema({Attribute::Numerical("n"), Attribute::Categorical("c", 7)},
                2);
  Rng rng(99);
  std::vector<Tuple> data;
  for (int i = 0; i < 3000; ++i) {
    const double n = rng.UniformDouble(0, 100);
    const double c = static_cast<double>(rng.UniformInt(0, 6));
    const int32_t label =
        (c == 2 || c == 5 || (c == 3 && n < 40)) ? 1 : 0;
    data.push_back(Tuple({n, c}, label));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_GT(tree.num_nodes(), 1u);
  ExpectIdenticalPredictions(tree, data);

  // Out-of-domain probes: category ids beyond the schema cardinality and
  // negative ids must take the same (right) branch as the pointer walk.
  std::vector<Tuple> weird;
  for (const double c : {-3.0, 7.0, 64.0, 1000.0}) {
    weird.push_back(Tuple({50.0, c}, 0));
  }
  ExpectIdenticalPredictions(tree, weird);
}

TEST(CompiledTreeTest, DeepNumericTree) {
  // A deliberately overfit deep tree (unique x per tuple, alternating
  // labels) exercises long root-to-leaf paths.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data;
  for (int i = 0; i < 512; ++i) {
    data.push_back(Tuple({static_cast<double>(i)}, i % 2));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  ASSERT_GT(tree.depth(), 4);
  ExpectIdenticalPredictions(tree, data);
}

TEST(CompiledTreeTest, MatchesBoatBuiltTreeAndEvaluate) {
  // End-to-end: a BOAT-built tree (not just the in-memory reference) plus
  // the Evaluate() overloads, which now route through CompiledTree.
  const auto train = AgrawalData(1, 6000, 707);
  auto selector = MakeGiniSelector();
  VectorSource source(MakeAgrawalSchema(), train);
  BoatOptions options;
  options.sample_size = 600;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 300;
  options.inmem_threshold = 600;
  options.limits.stop_family_size = 600;
  auto tree = BuildTreeBoat(&source, *selector, options);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  ExpectIdenticalPredictions(*tree, train);

  const CompiledTree compiled(*tree);
  const ConfusionMatrix from_tree = Evaluate(*tree, train);
  const ConfusionMatrix from_compiled = Evaluate(compiled, train, 8);
  ASSERT_EQ(from_tree.num_classes(), from_compiled.num_classes());
  for (int a = 0; a < from_tree.num_classes(); ++a) {
    for (int p = 0; p < from_tree.num_classes(); ++p) {
      EXPECT_EQ(from_tree.count(a, p), from_compiled.count(a, p));
    }
  }
  // wrong/n vs 1 - correct/n: equal up to one rounding of the division.
  EXPECT_NEAR(compiled.MisclassificationRate(train, 2),
              1.0 - from_tree.Accuracy(), 1e-12);
}

}  // namespace
}  // namespace boat
