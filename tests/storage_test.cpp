// Unit tests for src/storage: schema, tuples, table files, sources,
// sampling, temp files and spillable tuple stores.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/io_stats.h"
#include "storage/sampling.h"
#include "storage/table_file.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "storage/tuple_store.h"

namespace boat {
namespace {

namespace fs = std::filesystem;

Schema TestSchema() {
  return Schema({Attribute::Numerical("x"), Attribute::Categorical("c", 4),
                 Attribute::Numerical("y")},
                /*num_classes=*/3);
}

std::vector<Tuple> TestTuples(int n) {
  std::vector<Tuple> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(
        std::vector<double>{static_cast<double>(i) * 1.5,
                            static_cast<double>(i % 4),
                            static_cast<double>(100 - i)},
        i % 3);
  }
  return out;
}

// ---------------------------------------------------------------------- Schema

TEST(SchemaTest, BasicAccessors) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_attributes(), 3);
  EXPECT_EQ(s.num_classes(), 3);
  EXPECT_TRUE(s.IsNumerical(0));
  EXPECT_TRUE(s.IsCategorical(1));
  EXPECT_EQ(s.attribute(1).cardinality, 4);
  EXPECT_EQ(s.FindAttribute("y"), 2);
  EXPECT_EQ(s.FindAttribute("nope"), -1);
}

TEST(SchemaTest, RecordWidth) {
  // 8 (x) + 4 (c) + 8 (y) + 4 (label)
  EXPECT_EQ(TestSchema().RecordWidth(), 24u);
}

TEST(SchemaTest, FingerprintDistinguishesSchemas) {
  Schema a = TestSchema();
  Schema b({Attribute::Numerical("x"), Attribute::Categorical("c", 5),
            Attribute::Numerical("y")},
           3);
  Schema c({Attribute::Numerical("x"), Attribute::Categorical("c", 4),
            Attribute::Numerical("y")},
           2);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), TestSchema().Fingerprint());
}

TEST(SchemaTest, ValidateRejectsBadSchemas) {
  EXPECT_FALSE(Schema({}, 2).Validate().ok());
  EXPECT_FALSE(Schema({Attribute::Numerical("x")}, 1).Validate().ok());
  EXPECT_FALSE(Schema({Attribute::Numerical("x"), Attribute::Numerical("x")},
                      2)
                   .Validate()
                   .ok());
  EXPECT_FALSE(
      Schema({Attribute::Categorical("c", 1)}, 2).Validate().ok());
  EXPECT_TRUE(TestSchema().Validate().ok());
}

// ---------------------------------------------------------------------- Tuple

TEST(TupleTest, AccessorsAndEquality) {
  Tuple t({1.5, 2.0, -3.0}, 1);
  EXPECT_EQ(t.num_values(), 3);
  EXPECT_EQ(t.value(0), 1.5);
  EXPECT_EQ(t.category(1), 2);
  EXPECT_EQ(t.label(), 1);
  Tuple u = t;
  EXPECT_EQ(t, u);
  u.set_label(2);
  EXPECT_NE(t, u);
}

TEST(TupleTest, ToStringRendersPerType) {
  Schema s = TestSchema();
  Tuple t({1.5, 2.0, 7.0}, 1);
  EXPECT_EQ(t.ToString(s), "(1.5, 2, 7) -> 1");
}

// ------------------------------------------------------------------ TableFile

class TableFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }
  std::unique_ptr<TempFileManager> temp_;
};

TEST_F(TableFileTest, RoundTrip) {
  const Schema schema = TestSchema();
  const std::vector<Tuple> tuples = TestTuples(100);
  const std::string path = temp_->NewPath("roundtrip");
  ASSERT_TRUE(WriteTable(path, schema, tuples).ok());
  auto readback = ReadTable(path, schema);
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(*readback, tuples);
}

TEST_F(TableFileTest, EmptyTable) {
  const Schema schema = TestSchema();
  const std::string path = temp_->NewPath("empty");
  ASSERT_TRUE(WriteTable(path, schema, {}).ok());
  auto readback = ReadTable(path, schema);
  ASSERT_TRUE(readback.ok());
  EXPECT_TRUE(readback->empty());
}

TEST_F(TableFileTest, ReaderResetRestartsScan) {
  const Schema schema = TestSchema();
  const std::string path = temp_->NewPath("reset");
  ASSERT_TRUE(WriteTable(path, schema, TestTuples(10)).ok());
  auto reader = TableReader::Open(path, schema);
  ASSERT_TRUE(reader.ok());
  Tuple t;
  int first_pass = 0;
  while ((*reader)->Next(&t)) ++first_pass;
  EXPECT_EQ(first_pass, 10);
  EXPECT_FALSE((*reader)->Next(&t));
  ASSERT_TRUE((*reader)->Reset().ok());
  int second_pass = 0;
  while ((*reader)->Next(&t)) ++second_pass;
  EXPECT_EQ(second_pass, 10);
}

TEST_F(TableFileTest, SchemaMismatchRejected) {
  const Schema schema = TestSchema();
  const std::string path = temp_->NewPath("mismatch");
  ASSERT_TRUE(WriteTable(path, schema, TestTuples(3)).ok());
  const Schema other({Attribute::Numerical("z")}, 2);
  auto reader = TableReader::Open(path, other);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(TableFileTest, MissingFileIsNotFound) {
  auto reader = TableReader::Open(temp_->dir() + "/nope.tbl", TestSchema());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST_F(TableFileTest, CorruptMagicRejected) {
  const std::string path = temp_->NewPath("corrupt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char garbage[32] = "this is not a table";
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  auto reader = TableReader::Open(path, TestSchema());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST_F(TableFileTest, WriterRejectsWrongArity) {
  const std::string path = temp_->NewPath("arity");
  auto writer = TableWriter::Create(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  Tuple wrong({1.0}, 0);
  EXPECT_EQ((*writer)->Append(wrong).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE((*writer)->Finish().ok());
}

TEST_F(TableFileTest, BlockedReadsSpanBlocksWithExactStats) {
  // Enough rows that the reader's record block refills many times; record
  // content, order and the per-record IoStats must be unchanged.
  const Schema schema = TestSchema();
  const std::vector<Tuple> tuples = TestTuples(10000);
  const std::string path = temp_->NewPath("blocks");
  ASSERT_TRUE(WriteTable(path, schema, tuples).ok());
  ResetIoStats();
  auto reader = TableReader::Open(path, schema);
  ASSERT_TRUE(reader.ok());
  Tuple t;
  size_t i = 0;
  while ((*reader)->Next(&t)) {
    ASSERT_EQ(t, tuples[i]);
    ++i;
  }
  EXPECT_EQ(i, tuples.size());
  IoStats stats = GetIoStats();
  EXPECT_EQ(stats.tuples_read, tuples.size());
  EXPECT_EQ(stats.bytes_read, tuples.size() * schema.RecordWidth());

  // A mid-scan Reset discards buffered records and restarts from row 0.
  ASSERT_TRUE((*reader)->Reset().ok());
  for (int j = 0; j < 5; ++j) {
    ASSERT_TRUE((*reader)->Next(&t));
    EXPECT_EQ(t, tuples[static_cast<size_t>(j)]);
  }
  ASSERT_TRUE((*reader)->Reset().ok());
  size_t second_pass = 0;
  while ((*reader)->Next(&t)) ++second_pass;
  EXPECT_EQ(second_pass, tuples.size());
}

TEST_F(TableFileTest, IoStatsCountScans) {
  const Schema schema = TestSchema();
  const std::string path = temp_->NewPath("iostats");
  ASSERT_TRUE(WriteTable(path, schema, TestTuples(50)).ok());
  ResetIoStats();
  auto reader = TableReader::Open(path, schema);
  ASSERT_TRUE(reader.ok());
  Tuple t;
  while ((*reader)->Next(&t)) {
  }
  IoStats stats = GetIoStats();
  EXPECT_EQ(stats.scans_started, 1u);
  EXPECT_EQ(stats.tuples_read, 50u);
  EXPECT_EQ(stats.bytes_read, 50u * schema.RecordWidth());
}

// ---------------------------------------------------------------- TupleSource

TEST(TupleSourceTest, VectorSourceIteratesAndResets) {
  const Schema schema = TestSchema();
  VectorSource source(schema, TestTuples(5));
  Tuple t;
  int n = 0;
  while (source.Next(&t)) ++n;
  EXPECT_EQ(n, 5);
  ASSERT_TRUE(source.Reset().ok());
  n = 0;
  while (source.Next(&t)) ++n;
  EXPECT_EQ(n, 5);
}

TEST(TupleSourceTest, FilterSourceKeepsMatching) {
  const Schema schema = TestSchema();
  auto inner = std::make_unique<VectorSource>(schema, TestTuples(10));
  FilterSource filtered(std::move(inner),
                        [](const Tuple& t) { return t.label() == 0; });
  Tuple t;
  int n = 0;
  while (filtered.Next(&t)) {
    EXPECT_EQ(t.label(), 0);
    ++n;
  }
  EXPECT_EQ(n, 4);  // labels 0,1,2,0,1,2,... over 10 tuples
  ASSERT_TRUE(filtered.Reset().ok());
  int again = 0;
  while (filtered.Next(&t)) ++again;
  EXPECT_EQ(again, n);
}

TEST(TupleSourceTest, ChainSourceConcatenates) {
  const Schema schema = TestSchema();
  std::vector<std::unique_ptr<TupleSource>> parts;
  parts.push_back(std::make_unique<VectorSource>(schema, TestTuples(3)));
  parts.push_back(std::make_unique<VectorSource>(schema, TestTuples(4)));
  ChainSource chain(std::move(parts));
  auto all = Materialize(&chain);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 7u);
}

// ------------------------------------------------------------------- Sampling

TEST(SamplingTest, ReservoirReturnsWholeSmallStream) {
  const Schema schema = TestSchema();
  VectorSource source(schema, TestTuples(10));
  Rng rng(1);
  uint64_t seen = 0;
  auto sample = ReservoirSample(&source, 100, &rng, &seen);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 10u);
  EXPECT_EQ(seen, 10u);
}

TEST(SamplingTest, ReservoirSampleIsUniformish) {
  const Schema schema = TestSchema();
  const int n = 2000;
  VectorSource source(schema, TestTuples(n));
  // Draw many samples of size 1 and check the mean index is near n/2.
  double mean = 0;
  for (int rep = 0; rep < 400; ++rep) {
    Rng rng(static_cast<uint64_t>(rep) + 1);
    ASSERT_TRUE(source.Reset().ok());
    auto sample = ReservoirSample(&source, 1, &rng);
    ASSERT_TRUE(sample.ok());
    mean += (*sample)[0].value(0) / 1.5;  // recover the index
  }
  mean /= 400;
  EXPECT_NEAR(mean, n / 2.0, n * 0.06);
}

TEST(SamplingTest, ReservoirSampleIsPinned) {
  // The reservoir's draw sequence determines the coarse tree of every BOAT
  // build; these literal indices (Rng(1234), 10 of 2000) pin the stream so
  // an accidental algorithm or RNG change cannot slip by unnoticed.
  const Schema schema = TestSchema();
  VectorSource source(schema, TestTuples(2000));
  Rng rng(1234);
  auto sample = ReservoirSample(&source, 10, &rng);
  ASSERT_TRUE(sample.ok());
  std::vector<int> indices;
  for (const Tuple& t : *sample) {
    indices.push_back(static_cast<int>(t.value(0) / 1.5));
  }
  EXPECT_EQ(indices, (std::vector<int>{453, 1989, 1800, 641, 136, 912, 378,
                                       39, 114, 684}));

  // Same seed, fresh source: identical sample (the determinism the
  // parallel-equivalence guarantee builds on).
  ASSERT_TRUE(source.Reset().ok());
  Rng rng2(1234);
  auto again = ReservoirSample(&source, 10, &rng2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*sample, *again);
}

TEST(SamplingTest, WithReplacementDeterministic) {
  const std::vector<Tuple> population = TestTuples(50);
  Rng rng1(9), rng2(9);
  auto a = SampleWithReplacement(population, 30, &rng1);
  auto b = SampleWithReplacement(population, 30, &rng2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 30u);
}

TEST(SamplingTest, WithoutReplacementDistinct) {
  const std::vector<Tuple> population = TestTuples(20);
  Rng rng(3);
  auto s = SampleWithoutReplacement(population, 20, &rng);
  std::set<double> keys;
  for (const Tuple& t : s) keys.insert(t.value(0));
  EXPECT_EQ(keys.size(), 20u);  // a permutation: all distinct
}

// ------------------------------------------------------------ TempFileManager

TEST(TempFileManagerTest, CreatesAndCleansUp) {
  std::string dir;
  {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    dir = temp->dir();
    EXPECT_TRUE(fs::exists(dir));
    const std::string p1 = temp->NewPath("a");
    const std::string p2 = temp->NewPath("a");
    EXPECT_NE(p1, p2);
  }
  EXPECT_FALSE(fs::exists(dir));
}

TEST(TempFileManagerTest, MoveTransfersOwnership) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const std::string dir = temp->dir();
  {
    TempFileManager moved = std::move(temp).ValueOrDie();
    EXPECT_TRUE(fs::exists(dir));
  }
  EXPECT_FALSE(fs::exists(dir));
}

TEST(TempFileManagerTest, MoveAssignmentSwapsAndReclaimsBothDirs) {
  auto a = TempFileManager::Create();
  auto b = TempFileManager::Create();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string dir_a = a->dir();
  const std::string dir_b = b->dir();
  ASSERT_NE(dir_a, dir_b);
  {
    TempFileManager target = std::move(a).ValueOrDie();
    {
      TempFileManager source = std::move(b).ValueOrDie();
      target = std::move(source);
      // `source` now owns target's old dir and reclaims it on destruction.
    }
    EXPECT_FALSE(fs::exists(dir_a));
    EXPECT_TRUE(fs::exists(dir_b));
    // The assigned-to manager must remain fully usable.
    const std::string p = target.NewPath("post-assign");
    EXPECT_EQ(p.rfind(dir_b, 0), 0u) << p << " not under " << dir_b;
  }
  EXPECT_FALSE(fs::exists(dir_b));

  // Self-move-assignment must not destroy the scratch dir.
  auto c = TempFileManager::Create();
  ASSERT_TRUE(c.ok());
  TempFileManager self = std::move(c).ValueOrDie();
  const std::string dir_c = self.dir();
  TempFileManager& alias = self;
  self = std::move(alias);
  EXPECT_TRUE(fs::exists(dir_c));
}

// --------------------------------------------------------- SpillableTupleStore

class TupleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }
  std::unique_ptr<TempFileManager> temp_;
};

TEST_F(TupleStoreTest, InMemoryRoundTrip) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 100);
  const auto tuples = TestTuples(10);
  for (const Tuple& t : tuples) ASSERT_TRUE(store.Append(t).ok());
  EXPECT_EQ(store.size(), 10u);
  EXPECT_FALSE(store.spilled());
  auto back = store.ToVector();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 10u);
}

TEST_F(TupleStoreTest, SpillsAndStillIterates) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 8);
  const auto tuples = TestTuples(50);
  for (const Tuple& t : tuples) ASSERT_TRUE(store.Append(t).ok());
  EXPECT_EQ(store.size(), 50u);
  EXPECT_TRUE(store.spilled());
  auto back = store.ToVector();
  ASSERT_TRUE(back.ok());
  // Order is unspecified; compare as multisets via sorted first values.
  std::multiset<double> expect, got;
  for (const Tuple& t : tuples) expect.insert(t.value(0));
  for (const Tuple& t : *back) got.insert(t.value(0));
  EXPECT_EQ(expect, got);
}

TEST_F(TupleStoreTest, RemoveFromMemory) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 100);
  const auto tuples = TestTuples(5);
  for (const Tuple& t : tuples) ASSERT_TRUE(store.Append(t).ok());
  ASSERT_TRUE(store.RemoveOne(tuples[2]).ok());
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.RemoveOne(tuples[2]).code(), StatusCode::kNotFound);
}

TEST_F(TupleStoreTest, RemoveFromSpilledSegments) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 4);
  const auto tuples = TestTuples(20);
  for (const Tuple& t : tuples) ASSERT_TRUE(store.Append(t).ok());
  ASSERT_TRUE(store.spilled());
  ASSERT_TRUE(store.RemoveOne(tuples[1]).ok());  // lives in a segment
  EXPECT_EQ(store.size(), 19u);
  auto back = store.ToVector();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 19u);
  int count_of_removed = 0;
  for (const Tuple& t : *back) {
    if (t == tuples[1]) ++count_of_removed;
  }
  EXPECT_EQ(count_of_removed, 0);
}

TEST_F(TupleStoreTest, RemoveHonorsMultiplicity) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 2);
  Tuple t({1.0, 0.0, 2.0}, 1);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.Append(t).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.RemoveOne(t).ok());
  EXPECT_EQ(store.RemoveOne(t).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(TupleStoreTest, ClearResets) {
  SpillableTupleStore store(TestSchema(), temp_.get(), "s", 4);
  for (const Tuple& t : TestTuples(20)) ASSERT_TRUE(store.Append(t).ok());
  ASSERT_TRUE(store.Clear().ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.spilled());
  ASSERT_TRUE(store.Append(TestTuples(1)[0]).ok());
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace boat
