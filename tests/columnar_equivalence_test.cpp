// The columnar growth engine's contract: byte-identical trees to the legacy
// row-at-a-time reference builder, for every selector, schema shape and
// value distribution — including the weighted (bootstrap resample) variant
// against a materialized multiset, and the full BOAT pipeline at several
// thread counts with the columnar engine as the default.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "boat/builder.h"
#include "common/rng.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "tree/columnar_builder.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"

namespace boat {
namespace {

std::unique_ptr<SplitSelector> MakeSelector(const std::string& name) {
  if (name == "quest") return std::make_unique<QuestSelector>();
  return std::make_unique<ImpuritySplitSelector>(MakeImpurity(name));
}

GrowthLimits TestLimits() {
  GrowthLimits limits;
  limits.max_depth = 24;
  limits.stop_family_size = 50;
  return limits;
}

// Byte-compares the legacy row build against the columnar build on the same
// tuples, for every selector the repo ships.
void ExpectEnginesAgree(const Schema& schema,
                        const std::vector<Tuple>& tuples) {
  const GrowthLimits limits = TestLimits();
  for (const char* name : {"gini", "entropy", "quest"}) {
    std::unique_ptr<SplitSelector> selector = MakeSelector(name);
    const DecisionTree rows =
        BuildTreeInMemoryRows(schema, tuples, *selector, limits);
    const ColumnDataset data(schema, tuples);
    const DecisionTree columnar = BuildTreeColumnar(data, *selector, limits);
    EXPECT_EQ(SerializeTree(columnar), SerializeTree(rows))
        << "selector=" << name;
  }
}

TEST(ColumnarEquivalenceTest, AgrawalMixedSchema) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 20260801;
  ExpectEnginesAgree(MakeAgrawalSchema(), GenerateAgrawal(config, 6000));
}

TEST(ColumnarEquivalenceTest, AgrawalCategoricalFunctionWithNoise) {
  AgrawalConfig config;
  config.function = 7;
  config.noise = 0.05;
  config.seed = 20260802;
  ExpectEnginesAgree(MakeAgrawalSchema(), GenerateAgrawal(config, 6000));
}

TEST(ColumnarEquivalenceTest, DuplicateHeavyValues) {
  // Few distinct values per numeric column: every AVC row merges many
  // observations, and the root sort is dominated by ties (broken by row id).
  const Schema schema({Attribute::Numerical("a"), Attribute::Numerical("b"),
                       Attribute::Categorical("c", 3)},
                      /*num_classes=*/3);
  Rng rng(42);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 4000; ++i) {
    const double a = static_cast<double>(rng.UniformInt(0, 4));
    const double b = static_cast<double>(rng.UniformInt(0, 1));
    const double c = static_cast<double>(rng.UniformInt(0, 2));
    const int32_t label =
        static_cast<int32_t>((static_cast<int64_t>(a) + static_cast<int64_t>(c) +
                              rng.UniformInt(0, 1)) %
                             3);
    tuples.emplace_back(std::vector<double>{a, b, c}, label);
  }
  ExpectEnginesAgree(schema, tuples);
}

TEST(ColumnarEquivalenceTest, SingleNumericAttribute) {
  const Schema schema({Attribute::Numerical("x")}, /*num_classes=*/2);
  Rng rng(7);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.UniformDouble(0.0, 100.0);
    const int32_t label = (x > 42.0) == (rng.UniformInt(0, 9) > 0) ? 1 : 0;
    tuples.emplace_back(std::vector<double>{x}, label);
  }
  ExpectEnginesAgree(schema, tuples);
}

TEST(ColumnarEquivalenceTest, SingleCategoricalAttribute) {
  const Schema schema({Attribute::Categorical("c", 8)}, /*num_classes=*/2);
  Rng rng(11);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 3000; ++i) {
    const int64_t c = rng.UniformInt(0, 7);
    const int32_t label = (c < 3) == (rng.UniformInt(0, 9) > 0) ? 1 : 0;
    tuples.emplace_back(std::vector<double>{static_cast<double>(c)}, label);
  }
  ExpectEnginesAgree(schema, tuples);
}

TEST(ColumnarEquivalenceTest, AllCategoricalSchema) {
  // No numeric attribute at all: the engine must not touch any sort order.
  const Schema schema({Attribute::Categorical("a", 4),
                       Attribute::Categorical("b", 6),
                       Attribute::Categorical("c", 2)},
                      /*num_classes=*/3);
  Rng rng(13);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 4000; ++i) {
    const double a = static_cast<double>(rng.UniformInt(0, 3));
    const double b = static_cast<double>(rng.UniformInt(0, 5));
    const double c = static_cast<double>(rng.UniformInt(0, 1));
    const int32_t label = static_cast<int32_t>(
        (static_cast<int64_t>(a) + static_cast<int64_t>(b) +
         rng.UniformInt(0, 2)) %
        3);
    tuples.emplace_back(std::vector<double>{a, b, c}, label);
  }
  ExpectEnginesAgree(schema, tuples);
}

TEST(ColumnarEquivalenceTest, WeightedBuildEqualsMaterializedMultiset) {
  // A weight vector over the master dataset must grow the identical tree to
  // physically repeating each row weight-many times — for every selector.
  AgrawalConfig config;
  config.function = 6;
  config.seed = 20260803;
  const Schema schema = MakeAgrawalSchema();
  const std::vector<Tuple> base = GenerateAgrawal(config, 2000);

  Rng rng(99);
  std::vector<int32_t> weights(base.size());
  std::vector<Tuple> multiset;
  for (size_t i = 0; i < base.size(); ++i) {
    weights[i] = static_cast<int32_t>(rng.UniformInt(0, 3));  // some zeros
    for (int32_t w = 0; w < weights[i]; ++w) multiset.push_back(base[i]);
  }

  const GrowthLimits limits = TestLimits();
  const ColumnDataset data(schema, base);
  for (const char* name : {"gini", "entropy", "quest"}) {
    std::unique_ptr<SplitSelector> selector = MakeSelector(name);
    const DecisionTree weighted =
        BuildTreeColumnarWeighted(data, weights, *selector, limits);
    const DecisionTree expanded =
        BuildTreeInMemoryRows(schema, multiset, *selector, limits);
    EXPECT_EQ(SerializeTree(weighted), SerializeTree(expanded))
        << "selector=" << name;
  }
}

TEST(ColumnarEquivalenceTest, BoatPipelineMatchesRowReferenceAcrossThreads) {
  // Full BOAT build with the columnar engine active (the default) at several
  // thread counts: every run must serialize byte-identically to the tree the
  // legacy row builder grows over the same data.
  AgrawalConfig config;
  config.function = 1;
  config.seed = 20260804;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> tuples = GenerateAgrawal(config, 24000);

  GrowthLimits limits;
  limits.max_depth = 24;
  limits.stop_family_size = 400;
  auto selector = MakeGiniSelector();
  const DecisionTree reference =
      BuildTreeInMemoryRows(schema, tuples, *selector, limits);
  const std::string reference_bytes = SerializeTree(reference);
  ASSERT_GT(reference.num_nodes(), 1u) << "vacuous case";

  for (const int threads : {1, 2, 8}) {
    BoatOptions options;
    options.sample_size = 800;
    options.bootstrap_count = 10;
    options.bootstrap_subsample = 400;
    options.inmem_threshold = 300;
    options.store_memory_budget = 512;  // force spilling to temp segments
    options.max_buckets_per_attr = 64;
    options.seed = 7;
    options.limits = limits;
    options.num_threads = threads;
    VectorSource source(schema, tuples);
    auto tree = BuildTreeBoat(&source, *selector, options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_EQ(SerializeTree(*tree), reference_bytes) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace boat
