// Tests for the hyperplane and Gaussian-mixture generators, plus end-to-end
// identical-tree checks of BOAT on those workloads (multi-class, smooth
// boundaries, gradual drift).

#include <gtest/gtest.h>

#include <cmath>

#include "boat/builder.h"
#include "datagen/synthetic.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

TEST(HyperplaneGeneratorTest, DeterministicAndRestartable) {
  HyperplaneConfig config;
  config.dimensions = 4;
  config.seed = 3;
  HyperplaneGenerator gen(config, 500);
  std::vector<Tuple> first;
  Tuple t;
  while (gen.Next(&t)) first.push_back(t);
  ASSERT_TRUE(gen.Reset().ok());
  std::vector<Tuple> second;
  while (gen.Next(&t)) second.push_back(t);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 500u);
}

TEST(HyperplaneGeneratorTest, LabelsMatchTheHyperplane) {
  HyperplaneConfig config;
  config.dimensions = 3;
  config.weights = {1.0, 2.0, 0.5};
  config.value_range = 100;
  config.seed = 5;
  const double theta = (1.0 + 2.0 + 0.5) * 50.0;
  for (const Tuple& t : GenerateHyperplane(config, 2000)) {
    const double dot =
        t.value(0) * 1.0 + t.value(1) * 2.0 + t.value(2) * 0.5;
    EXPECT_EQ(t.label(), dot > theta ? 1 : 0);
  }
}

TEST(HyperplaneGeneratorTest, BothClassesRoughlyBalanced) {
  HyperplaneConfig config;
  config.seed = 7;
  int64_t counts[2] = {0, 0};
  for (const Tuple& t : GenerateHyperplane(config, 10000)) {
    ++counts[t.label()];
  }
  EXPECT_GT(counts[0], 3500);
  EXPECT_GT(counts[1], 3500);
}

TEST(HyperplaneGeneratorTest, DriftChangesTheConcept) {
  // With drift, the same attribute vector can be labeled differently in
  // different blocks; compare the label of early vs late blocks via
  // disagreement of trained stumps.
  HyperplaneConfig drifting;
  drifting.dimensions = 3;
  drifting.drift = 0.8;
  drifting.drift_block = 2000;
  drifting.seed = 9;
  auto data = GenerateHyperplane(drifting, 20000);
  const Schema schema(
      {Attribute::Numerical("x0"), Attribute::Numerical("x1"),
       Attribute::Numerical("x2")},
      2);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 4;
  std::vector<Tuple> early(data.begin(), data.begin() + 2000);
  std::vector<Tuple> late(data.end() - 2000, data.end());
  DecisionTree tree_early = BuildTreeInMemory(schema, early, *selector, limits);
  // The early concept should fit early data much better than late data.
  const double err_early = tree_early.MisclassificationRate(early);
  const double err_late = tree_early.MisclassificationRate(late);
  EXPECT_LT(err_early + 0.05, err_late);
}

TEST(GaussianMixtureGeneratorTest, DeterministicAndInRange) {
  GaussianMixtureConfig config;
  config.seed = 13;
  auto a = GenerateGaussianMixture(config, 300);
  auto b = GenerateGaussianMixture(config, 300);
  EXPECT_EQ(a, b);
  for (const Tuple& t : a) {
    for (int d = 0; d < config.dimensions; ++d) {
      EXPECT_GE(t.value(d), 0.0);
      EXPECT_LE(t.value(d), config.spread);
      EXPECT_EQ(t.value(d), std::round(t.value(d)));
    }
    EXPECT_GE(t.label(), 0);
    EXPECT_LT(t.label(), config.num_classes);
  }
}

TEST(GaussianMixtureGeneratorTest, AllClassesPresent) {
  GaussianMixtureConfig config;
  config.num_classes = 5;
  config.seed = 17;
  std::vector<int64_t> counts(5, 0);
  for (const Tuple& t : GenerateGaussianMixture(config, 5000)) {
    ++counts[t.label()];
  }
  for (const int64_t c : counts) EXPECT_GT(c, 500);
}

TEST(GaussianMixtureGeneratorTest, LearnableByTrees) {
  GaussianMixtureConfig config;
  config.num_classes = 3;
  config.stddev = 40.0;
  config.seed = 19;
  auto train = GenerateGaussianMixture(config, 6000);
  GaussianMixtureGenerator test_gen(config, 1);  // same centers
  config.seed = 19;  // same distribution, fresh draws via more rows
  auto all = GenerateGaussianMixture(config, 8000);
  std::vector<Tuple> test(all.begin() + 6000, all.end());
  auto selector = MakeGiniSelector();
  const Schema& schema = test_gen.schema();
  DecisionTree tree = BuildTreeInMemory(schema, train, *selector);
  EXPECT_LT(tree.MisclassificationRate(test), 0.15);
}

TEST(SyntheticEquivalenceTest, BoatMatchesReferenceOnHyperplane) {
  HyperplaneConfig config;
  config.dimensions = 4;
  config.noise = 0.05;
  config.seed = 23;
  HyperplaneGenerator gen(config, 8000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 14;
  BoatOptions options;
  options.sample_size = 1000;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 400;
  options.inmem_threshold = 400;
  options.limits = limits;
  options.seed = 1;
  BoatStats stats;
  auto tree = BuildTreeBoat(&gen, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  DecisionTree reference = BuildTreeInMemory(
      gen.schema(), GenerateHyperplane(config, 8000), *selector, limits);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(SyntheticEquivalenceTest, BoatMatchesReferenceOnMixture) {
  GaussianMixtureConfig config;
  config.num_classes = 4;  // exercises 2^k corner bounds with k = 4
  config.noise = 0.05;
  config.seed = 29;
  GaussianMixtureGenerator gen(config, 6000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 12;
  BoatOptions options;
  options.sample_size = 1000;
  options.bootstrap_count = 8;
  options.bootstrap_subsample = 400;
  options.inmem_threshold = 500;
  options.limits = limits;
  options.seed = 2;
  auto tree = BuildTreeBoat(&gen, *selector, options);
  ASSERT_TRUE(tree.ok());
  DecisionTree reference = BuildTreeInMemory(
      gen.schema(), GenerateGaussianMixture(config, 6000), *selector, limits);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(SyntheticEquivalenceTest, IncrementalUnderGradualDrift) {
  // Gradual hyperplane drift: every chunk shifts the concept slightly; the
  // incremental tree must equal the rebuild after every chunk.
  HyperplaneConfig config;
  config.dimensions = 3;
  config.drift = 0.3;
  config.drift_block = 1500;
  config.noise = 0.05;
  config.seed = 31;
  auto all = GenerateHyperplane(config, 7500);
  const Schema schema(
      {Attribute::Numerical("x0"), Attribute::Numerical("x1"),
       Attribute::Numerical("x2")},
      2);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 10;
  BoatOptions options;
  options.sample_size = 600;
  options.bootstrap_count = 8;
  options.bootstrap_subsample = 250;
  options.inmem_threshold = 300;
  options.limits = limits;
  options.enable_updates = true;
  options.seed = 3;

  std::vector<Tuple> base(all.begin(), all.begin() + 3000);
  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());
  size_t cursor = 3000;
  while (cursor < all.size()) {
    const size_t end = std::min(all.size(), cursor + 1500);
    std::vector<Tuple> chunk(all.begin() + cursor, all.begin() + end);
    ASSERT_TRUE((*classifier)->InsertChunk(chunk).ok());
    cursor = end;
    std::vector<Tuple> so_far(all.begin(), all.begin() + cursor);
    DecisionTree reference =
        BuildTreeInMemory(schema, so_far, *selector, limits);
    ASSERT_TRUE((*classifier)->tree().StructurallyEqual(reference))
        << "diverged at " << cursor;
  }
}

}  // namespace
}  // namespace boat
