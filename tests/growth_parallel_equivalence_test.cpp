// The tentpole contract of intra-tree parallel growth: the columnar engine
// produces the byte-identical tree at every thread count, for every
// selector, weighted or not, and all the way through the full BOAT pipeline
// including the persisted model directory (manifest + S_n table files).
// Thread count is a throughput knob, never a semantic one — this test is the
// proof, and it runs under TSan in CI so "identical" also means "race-free".
//
// Dataset sizes here are chosen to actually cross the engine's parallel
// thresholds (kMinParallelRows, kParallelPartitionMin in
// tree/columnar_builder.cc): a dataset too small to fan out would pass
// vacuously through the serial path.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "boat/session.h"
#include "common/rng.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/column_dataset.h"
#include "tree/columnar_builder.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"

namespace boat {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<SplitSelector> MakeSelector(const std::string& name) {
  if (name == "quest") return std::make_unique<QuestSelector>();
  return std::make_unique<ImpuritySplitSelector>(MakeImpurity(name));
}

/// Limits deep enough that the frontier fans out and large nodes take the
/// blocked-partition path.
GrowthLimits DeepLimits(int num_threads) {
  GrowthLimits limits;
  limits.max_depth = 24;
  limits.stop_family_size = 50;
  limits.num_threads = num_threads;
  return limits;
}

std::vector<Tuple> Corpus(int function, uint64_t n, uint64_t seed) {
  AgrawalConfig config;
  config.function = function;
  config.noise = 0.05;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

/// Reads every regular file under `dir` into a name -> bytes map. Model
/// directories use only relative, deterministic file names
/// (manifest.boatmodel, store-N.tbl, archive-*.tbl), so two runs are
/// byte-identical iff these maps are equal.
std::map<std::string, std::string> DirBytes(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[entry.path().filename().string()] = bytes.str();
  }
  return files;
}

class GrowthParallelEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

// Direct-builder matrix: the unweighted columnar build at 2 and 8 threads is
// byte-identical to the 1-thread build — which itself is byte-identical to
// the row-engine reference, so "parallel == serial == reference" holds as
// one chain.
TEST_P(GrowthParallelEquivalenceTest, UnweightedTreeIsThreadCountInvariant) {
  const std::string name = GetParam();
  const Schema schema = MakeAgrawalSchema();
  const std::vector<Tuple> tuples = Corpus(1, 12000, 20260807);
  std::unique_ptr<SplitSelector> selector = MakeSelector(name);

  const DecisionTree reference =
      BuildTreeInMemoryRows(schema, tuples, *selector, DeepLimits(1));
  const std::string reference_bytes = SerializeTree(reference);
  ASSERT_GT(reference.num_nodes(), 1u) << "vacuous case";

  for (const int threads : {1, 2, 8}) {
    const GrowthLimits limits = DeepLimits(threads);
    const ColumnDataset data(schema, tuples, limits.num_threads);
    const DecisionTree tree = BuildTreeColumnar(data, *selector, limits);
    EXPECT_EQ(SerializeTree(tree), reference_bytes)
        << "selector=" << name << " threads=" << threads;
  }
}

// Weighted variant: a bootstrap-style weight vector (with zeros, so rows
// drop out entirely) grows the same tree at every thread count.
TEST_P(GrowthParallelEquivalenceTest, WeightedTreeIsThreadCountInvariant) {
  const std::string name = GetParam();
  const Schema schema = MakeAgrawalSchema();
  const std::vector<Tuple> tuples = Corpus(6, 10000, 20260808);
  std::unique_ptr<SplitSelector> selector = MakeSelector(name);

  Rng rng(99);
  std::vector<int32_t> weights(tuples.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<int32_t>(rng.UniformInt(0, 3));  // some zeros
  }

  std::string serial_bytes;
  for (const int threads : {1, 2, 8}) {
    const GrowthLimits limits = DeepLimits(threads);
    const ColumnDataset data(schema, tuples, limits.num_threads);
    const DecisionTree tree =
        BuildTreeColumnarWeighted(data, weights, *selector, limits);
    const std::string bytes = SerializeTree(tree);
    if (threads == 1) {
      serial_bytes = bytes;
      ASSERT_FALSE(serial_bytes.empty());
    } else {
      EXPECT_EQ(bytes, serial_bytes)
          << "selector=" << name << " threads=" << threads;
    }
  }
}

// Full BOAT pipeline through the Session facade: trees AND the persisted
// model directories (manifest, S_n store files, archive segments) are
// byte-identical across thread counts. This is the strongest form of the
// claim — even the spilled tuple-store files the incremental path will
// later read back must not depend on how many threads grew the tree.
TEST_P(GrowthParallelEquivalenceTest, BoatPipelineAndStoreFilesMatch) {
  const std::string name = GetParam();
  const Schema schema = MakeAgrawalSchema();
  const std::vector<Tuple> tuples = Corpus(2, 8000, 20260809);

  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok()) << temp.status().ToString();

  SessionOptions options;
  options.selector = name;
  options.boat.sample_size = 600;
  options.boat.bootstrap_count = 8;
  options.boat.bootstrap_subsample = 200;
  options.boat.inmem_threshold = 250;
  options.boat.store_memory_budget = 256;  // force S_n spills to table files
  options.boat.seed = 17;

  std::string serial_tree;
  std::map<std::string, std::string> serial_files;
  for (const int threads : {1, 2, 8}) {
    options.boat.num_threads = threads;
    std::vector<Tuple> copy = tuples;
    VectorSource source(schema, copy);
    const std::string dir =
        temp->NewPath("model-" + name + "-t" + std::to_string(threads));
    auto session = Session::Train(&source, dir, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    const std::string tree_bytes = SerializeTree((*session)->tree());
    std::map<std::string, std::string> files = DirBytes(dir);
    ASSERT_FALSE(files.empty());
    if (threads == 1) {
      serial_tree = tree_bytes;
      serial_files = std::move(files);
      continue;
    }
    EXPECT_EQ(tree_bytes, serial_tree)
        << "selector=" << name << " threads=" << threads;
    ASSERT_EQ(files.size(), serial_files.size())
        << "selector=" << name << " threads=" << threads;
    for (const auto& [fname, bytes] : serial_files) {
      const auto it = files.find(fname);
      ASSERT_NE(it, files.end())
          << "missing " << fname << " at threads=" << threads;
      EXPECT_EQ(it->second, bytes)
          << "file " << fname << " differs, selector=" << name
          << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Selectors, GrowthParallelEquivalenceTest,
                         ::testing::Values("gini", "entropy", "quest"),
                         [](const ::testing::TestParamInfo<const char*>& p) {
                           return std::string(p.param);
                         });

}  // namespace
}  // namespace boat
