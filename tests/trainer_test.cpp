// Streaming-ingestion tests: the Session facade's transactional Apply
// (validation, exact incremental maintenance, rollback-to-last-persisted on
// failure), the Trainer's queue/apply/hot-swap loop, and full end-to-end
// coverage of the INGEST/DELETE/RETRAIN wire commands over real sockets —
// including the two hard guarantees the design rests on: a rejected chunk
// leaves served predictions byte-identical, and streaming under load drops
// zero requests (run in CI under -DBOAT_SANITIZE=thread).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "boat/session.h"
#include "datagen/agrawal.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/trainer.h"
#include "serve/wire.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/serialize.h"

namespace boat {
namespace {

using serve::BoatServer;
using serve::ModelRegistry;
using serve::Reply;
using serve::ServerOptions;
using serve::Trainer;
using serve::TrainerOptions;

std::vector<Tuple> Corpus(int function, uint64_t n, uint64_t seed) {
  AgrawalConfig config;
  config.function = function;
  config.noise = 0.05;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

SessionOptions SmallSessionOptions() {
  SessionOptions options;
  options.boat.sample_size = 800;
  options.boat.bootstrap_count = 8;
  options.boat.bootstrap_subsample = 300;
  options.boat.inmem_threshold = 300;
  options.boat.store_memory_budget = 256;
  options.boat.seed = 11;
  return options;
}

/// A delete chunk no training database can absorb: more records of class 1
/// than the whole database holds, so the engine's negative-class-total guard
/// must fire mid-apply — the deterministic trigger for the rollback paths.
std::vector<Tuple> ImpossibleDeleteChunk(size_t db_size) {
  std::vector<Tuple> chunk = Corpus(6, db_size + 100, 4242);
  for (Tuple& t : chunk) t.set_label(1);
  return chunk;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }

  std::unique_ptr<Session> TrainBase(const std::string& dir) {
    base_ = Corpus(6, 2000, 100);
    VectorSource source(MakeAgrawalSchema(), base_);
    auto session = Session::Train(&source, dir, SmallSessionOptions());
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return std::move(session).ValueOrDie();
  }

  std::unique_ptr<TempFileManager> temp_;
  std::vector<Tuple> base_;
};

TEST_F(SessionTest, TrainThenOpenYieldsIdenticalTree) {
  const std::string dir = temp_->NewPath("model");
  auto trained = TrainBase(dir);
  auto opened = Session::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(SerializeTree(trained->tree()), SerializeTree((*opened)->tree()));
  EXPECT_EQ((*opened)->dir(), dir);
  EXPECT_EQ((*opened)->selector_name(), "gini");
  EXPECT_EQ((*opened)->revision(), 0u);
}

TEST_F(SessionTest, UnknownSelectorIsRejected) {
  EXPECT_FALSE(MakeSelectorByName("id3").ok());
  EXPECT_FALSE(Session::Open(temp_->NewPath("nope"), "id3").ok());
}

TEST_F(SessionTest, ApplyValidatesChunksBeforeTouchingTheEngine) {
  const std::string dir = temp_->NewPath("model");
  auto session = TrainBase(dir);
  const std::string before = SerializeTree(session->tree());

  // Arity mismatch.
  EXPECT_FALSE(session->Apply(ChunkOp::kInsert, {Tuple({1.0, 2.0}, 0)}).ok());
  // Label out of range.
  std::vector<Tuple> bad_label = Corpus(6, 1, 7);
  bad_label[0].set_label(99);
  EXPECT_FALSE(session->Apply(ChunkOp::kInsert, bad_label).ok());
  // Non-finite numerical value.
  std::vector<Tuple> bad_value = Corpus(6, 1, 7);
  bad_value[0].set_value(0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(session->Apply(ChunkOp::kInsert, bad_value).ok());
  // Categorical value outside its cardinality (elevel has 5 levels).
  std::vector<Tuple> bad_cat = Corpus(6, 1, 7);
  bad_cat[0].set_value(3, 77.0);
  EXPECT_FALSE(session->Apply(ChunkOp::kInsert, bad_cat).ok());

  EXPECT_EQ(session->revision(), 0u);
  EXPECT_EQ(SerializeTree(session->tree()), before);
}

TEST_F(SessionTest, FailedApplyRollsBackEngineAndDirectory) {
  const std::string dir = temp_->NewPath("model");
  auto session = TrainBase(dir);
  const std::string before = SerializeTree(session->tree());

  const Status status =
      session->Apply(ChunkOp::kDelete, ImpossibleDeleteChunk(base_.size()));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(session->revision(), 0u);
  // The in-memory engine rolled back...
  EXPECT_EQ(SerializeTree(session->tree()), before);
  // ...and the directory still holds the pre-call state.
  auto reopened = Session::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(SerializeTree((*reopened)->tree()), before);

  // The session stays fully usable: a good chunk applies and persists.
  ASSERT_TRUE(session->Apply(ChunkOp::kInsert, Corpus(6, 200, 555)).ok());
  EXPECT_EQ(session->revision(), 1u);
  auto after = Session::Open(dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(SerializeTree((*after)->tree()), SerializeTree(session->tree()));
}

TEST_F(SessionTest, InsertThenDeleteRestoresTheOriginalTree) {
  const std::string dir = temp_->NewPath("model");
  auto session = TrainBase(dir);
  const std::string before = SerializeTree(session->tree());
  const std::vector<Tuple> chunk = Corpus(1, 400, 999);
  ASSERT_TRUE(session->Apply(ChunkOp::kInsert, chunk).ok());
  ASSERT_TRUE(session->Apply(ChunkOp::kDelete, chunk).ok());
  // tree() is a pure function of the training database, so insert+delete of
  // the same chunk is a no-op on the tree.
  EXPECT_EQ(SerializeTree(session->tree()), before);
  EXPECT_EQ(session->revision(), 2u);
}

// ---------------------------------------------------------------- trainer

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
    dir_ = temp_->NewPath("model");
    base_ = Corpus(6, 2000, 100);
    VectorSource source(MakeAgrawalSchema(), base_);
    auto session = Session::Train(&source, dir_, SmallSessionOptions());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
  }

  TrainerOptions Options() const {
    TrainerOptions options;
    options.model_dir = dir_;
    return options;
  }

  std::unique_ptr<TempFileManager> temp_;
  std::string dir_;
  std::vector<Tuple> base_;
};

TEST_F(TrainerTest, StartInstallsTheInitialModelWithoutCountingAReload) {
  ModelRegistry registry;
  Trainer trainer(&registry, Options());
  ASSERT_TRUE(trainer.Start().ok());
  ASSERT_NE(registry.Snapshot(), nullptr);
  EXPECT_EQ(registry.reload_count(), 0);
  EXPECT_EQ(trainer.schema().num_attributes(),
            MakeAgrawalSchema().num_attributes());
  trainer.Shutdown();
}

TEST_F(TrainerTest, SubmitBeforeStartReportsBackpressure) {
  ModelRegistry registry;
  Trainer trainer(&registry, Options());
  EXPECT_FALSE(trainer.TrySubmit(ChunkOp::kInsert, Corpus(6, 10, 1))
                   .has_value());
}

TEST_F(TrainerTest, FlushAppliesSubmittedChunksAndSwapsTheModel) {
  ModelRegistry registry;
  Trainer trainer(&registry, Options());
  ASSERT_TRUE(trainer.Start().ok());
  const uint64_t before = registry.Snapshot()->fingerprint;

  auto seq = trainer.TrySubmit(ChunkOp::kInsert, Corpus(1, 400, 31));
  ASSERT_TRUE(seq.has_value());
  auto result = trainer.Flush();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->applied, 1u);
  EXPECT_EQ(result->failed, 0u);
  // The barrier implies the swap is published: the live fingerprint IS the
  // flush result's, and it differs from the pre-ingest model.
  EXPECT_EQ(registry.Snapshot()->fingerprint, result->fingerprint);
  EXPECT_NE(result->fingerprint, before);

  // The swap is also persisted: reopening the directory yields the same
  // tree the registry serves.
  auto reopened = Session::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(registry.Snapshot()->fingerprint,
            serve::ServableModel((*reopened)->tree(), dir_).fingerprint);
  trainer.Shutdown();
}

TEST_F(TrainerTest, FailedChunkKeepsTheLiveModelAndCountsAsFailed) {
  ModelRegistry registry;
  Trainer trainer(&registry, Options());
  ASSERT_TRUE(trainer.Start().ok());
  const uint64_t before = registry.Snapshot()->fingerprint;

  ASSERT_TRUE(trainer
                  .TrySubmit(ChunkOp::kDelete,
                             ImpossibleDeleteChunk(base_.size()))
                  .has_value());
  auto result = trainer.Flush();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->applied, 0u);
  EXPECT_EQ(result->failed, 1u);
  EXPECT_EQ(result->fingerprint, before);
  EXPECT_EQ(registry.Snapshot()->fingerprint, before);
  EXPECT_NE(trainer.StatsJson().find("\"failed\":1"), std::string::npos)
      << trainer.StatsJson();
  trainer.Shutdown();
}

// Regression for a lifecycle race the thread-safety sweep surfaced: the
// seed Shutdown() gated on started_.exchange() and joined the apply thread
// outside any lock, so two concurrent callers (e.g. an explicit Shutdown
// racing the destructor) could both reach thread_.join() — UB — or one
// could return while the queue was still draining. Callers now serialize
// on lifecycle_mu_: when ANY Shutdown() returns, every accepted chunk has
// been applied. TSan CI runs this binary, so the old unsynchronized join
// would also be flagged dynamically.
TEST_F(TrainerTest, ConcurrentShutdownCallsAreSerialized) {
  ModelRegistry registry;
  auto trainer = std::make_unique<Trainer>(&registry, Options());
  ASSERT_TRUE(trainer->Start().ok());
  const uint64_t before = registry.Snapshot()->fingerprint;
  ASSERT_TRUE(
      trainer->TrySubmit(ChunkOp::kInsert, Corpus(1, 400, 83)).has_value());

  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] { trainer->Shutdown(); });
  }
  callers[0].join();
  // Any returned caller implies the drain finished: the accepted chunk was
  // applied and its hot-swap published.
  EXPECT_NE(registry.Snapshot()->fingerprint, before);
  for (int i = 1; i < kCallers; ++i) callers[i].join();
  trainer.reset();  // destructor's Shutdown must also be a clean no-op
}

// ------------------------------------------------------------ end-to-end

/// Minimal blocking line client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
    timeval tv{/*tv_sec=*/60, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// One reply line ("" on timeout/EOF).
  std::string ReadLine() {
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

class StreamingE2eTest : public TrainerTest {
 protected:
  void StartDaemon(ServerOptions server_options = ServerOptions{}) {
    trainer_ = std::make_unique<Trainer>(&registry_, Options());
    ASSERT_TRUE(trainer_->Start().ok());
    server_ = std::make_unique<BoatServer>(&registry_, server_options,
                                           trainer_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (trainer_ != nullptr) trainer_->Shutdown();
  }

  /// Labels the live daemon serves for `lines`, in order.
  std::vector<std::string> ServedLabels(const std::vector<std::string>& lines) {
    TestClient client(server_->port());
    std::string all;
    for (const std::string& line : lines) all += line + "\n";
    client.Send(all);
    client.ShutdownWrite();
    std::vector<std::string> labels;
    labels.reserve(lines.size());
    for (size_t i = 0; i < lines.size(); ++i) {
      labels.push_back(client.ReadLine());
    }
    return labels;
  }

  ModelRegistry registry_;
  std::unique_ptr<Trainer> trainer_;
  std::unique_ptr<BoatServer> server_;
};

TEST_F(StreamingE2eTest, IngestRetrainServesTheRetrainedModel) {
  StartDaemon();
  const Schema schema = MakeAgrawalSchema();
  const auto probe = Corpus(6, 200, 321);
  const auto probe_lines = serve::FormatRecordLines(schema, probe);

  // Stream a distribution-changing chunk and a deletion, then barrier.
  const auto drift = Corpus(1, 600, 77);
  TestClient client(server_->port());
  std::string out = "INGEST 600\n";
  for (const auto& line : serve::FormatLabeledRecordLines(schema, drift)) {
    out += line + "\n";
  }
  std::vector<Tuple> removed(base_.begin(), base_.begin() + 200);
  out += "DELETE 200\n";
  for (const auto& line : serve::FormatLabeledRecordLines(schema, removed)) {
    out += line + "\n";
  }
  out += "RETRAIN\n";
  client.Send(out);
  EXPECT_EQ(client.ReadLine().substr(0, 16), "OK ingest queued");
  EXPECT_EQ(client.ReadLine().substr(0, 16), "OK delete queued");
  const std::string retrain = client.ReadLine();
  EXPECT_EQ(retrain.substr(0, 20), "OK retrain applied 2") << retrain;

  // After the barrier the served labels are byte-identical to offline
  // classification by the persisted (retrained) model.
  auto offline = Session::Open(dir_);
  ASSERT_TRUE(offline.ok());
  const CompiledTree compiled = (*offline)->Compile();
  const std::vector<std::string> served = ServedLabels(probe_lines);
  for (size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(served[i], std::to_string(compiled.Classify(probe[i])))
        << "record " << i;
  }
}

TEST_F(StreamingE2eTest, RejectedChunksLeaveServedPredictionsByteIdentical) {
  StartDaemon();
  const Schema schema = MakeAgrawalSchema();
  const auto probe = Corpus(6, 150, 654);
  const auto probe_lines = serve::FormatRecordLines(schema, probe);
  const std::vector<std::string> before = ServedLabels(probe_lines);

  TestClient client(server_->port());
  // A chunk with a malformed payload line is rejected whole (one ERR), and
  // the connection keeps working: all 3 payload lines were consumed.
  client.Send("INGEST 3\n1,2,3\ngarbage\n4,5,6\nPING\n");
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine(), "PONG");

  // A well-formed chunk the engine must reject mid-apply (deleting records
  // that were never inserted) rolls back; the barrier proves it completed.
  const auto impossible = ImpossibleDeleteChunk(base_.size());
  auto replies = serve::SendChunk(
      server_->port(), ChunkOp::kDelete,
      serve::FormatLabeledRecordLines(schema, impossible), /*retrain=*/true);
  ASSERT_TRUE(replies.ok()) << replies.status().ToString();
  EXPECT_EQ((*replies)[0].kind, Reply::Kind::kOk);  // queued...
  EXPECT_EQ((*replies)[1].kind, Reply::Kind::kOk);  // ...barrier done
  EXPECT_NE((*replies)[1].text.find("failed 1"), std::string::npos)
      << (*replies)[1].text;

  // Both rejections left the served model untouched, byte for byte.
  EXPECT_EQ(ServedLabels(probe_lines), before);
}

TEST_F(StreamingE2eTest, TruncatedChunkGetsErrOnHalfClose) {
  StartDaemon();
  TestClient client(server_->port());
  client.Send("INGEST 5\n1,2,3\n");
  client.ShutdownWrite();
  EXPECT_EQ(client.ReadLine(), "ERR truncated chunk");
}

TEST_F(StreamingE2eTest, OversizedChunkIsRejectedButFramingSurvives) {
  ServerOptions options;
  options.max_chunk_records = 2;
  StartDaemon(options);
  TestClient client(server_->port());
  // 3 > max_chunk_records: rejected at the INGEST line, but all 3 payload
  // lines must still be consumed so the following PING parses as a command.
  client.Send("INGEST 3\n1,2,3\n4,5,6\n7,8,9\nPING\n");
  const std::string err = client.ReadLine();
  EXPECT_EQ(err.substr(0, 3), "ERR") << err;
  EXPECT_NE(err.find("chunk too large"), std::string::npos) << err;
  EXPECT_EQ(client.ReadLine(), "PONG");
}

TEST_F(StreamingE2eTest, IngestWithoutTrainerIsACleanError) {
  // A server constructed without a trainer (boatd without streaming) still
  // consumes chunk payloads and answers one ERR.
  BoatServer server(&registry_, ServerOptions{});
  // Registry needs a model for Start(); install via a throwaway trainer.
  {
    Trainer bootstrap(&registry_, Options());
    ASSERT_TRUE(bootstrap.Start().ok());
    bootstrap.Shutdown();
  }
  ASSERT_TRUE(server.Start().ok());
  TestClient client(server.port());
  client.Send("INGEST 2\n1,2,3\n4,5,6\nPING\n");
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine(), "PONG");
  server.Shutdown();
}

TEST_F(StreamingE2eTest, StreamingUnderLoadDropsNothing) {
  StartDaemon();
  const Schema schema = MakeAgrawalSchema();
  const auto corpus = Corpus(6, 400, 888);
  const auto lines = serve::FormatRecordLines(schema, corpus);

  // Scoring traffic with no expected labels (the model legitimately changes
  // mid-run): every reply must still be a label — no ERR, BUSY, or drop.
  serve::LoadGenOptions load;
  load.port = server_->port();
  load.connections = 4;
  load.repeat = 25;
  load.window = 64;
  Result<serve::LoadGenReport> report =
      Status::Internal("loadgen never ran");
  std::thread scorer([&] { report = RunLoadGen(load, lines, nullptr); });

  // Meanwhile, stream drifting chunks with RETRAIN barriers.
  for (int i = 0; i < 5; ++i) {
    const auto chunk = Corpus(1, 150, 1000 + static_cast<uint64_t>(i));
    auto replies = serve::SendChunk(
        server_->port(), ChunkOp::kInsert,
        serve::FormatLabeledRecordLines(schema, chunk), /*retrain=*/true);
    ASSERT_TRUE(replies.ok()) << replies.status().ToString();
    for (const Reply& reply : *replies) {
      EXPECT_EQ(reply.kind, Reply::Kind::kOk) << serve::FormatReply(reply);
    }
  }
  scorer.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sent, 4u * 25u * lines.size());
  EXPECT_EQ(report->ok, report->sent);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->busy, 0u);
  EXPECT_EQ(report->mismatches, 0u);
}

}  // namespace
}  // namespace boat
