// Property-based tests (parameterized sweeps over random instances):
//  * concavity of every impurity function over the stamp-point space — the
//    property Lemma 3.1 rests on;
//  * corner lower bounds never exceed any realizable candidate impurity;
//  * cross-algorithm tree equivalence on randomized schemas and datasets
//    that look nothing like the Agrawal data (many categorical attributes,
//    multi-class labels, duplicated values, point masses).

#include <gtest/gtest.h>

#include <memory>

#include "boat/bounds.h"
#include "boat/builder.h"
#include "rainforest/rainforest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

// ------------------------------------------------------ impurity concavity

class ImpurityConcavityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ImpurityConcavityTest, MidpointAboveChord) {
  auto imp = MakeImpurity(GetParam());
  ASSERT_NE(imp, nullptr);
  Rng rng(2024);
  for (int rep = 0; rep < 500; ++rep) {
    const int k = 2 + static_cast<int>(rng.UniformInt(0, 2));
    std::vector<int64_t> totals(k);
    int64_t total = 0;
    for (int c = 0; c < k; ++c) {
      totals[c] = rng.UniformInt(4, 40);
      total += totals[c];
    }
    // Two stamp points a, b and their midpoint m (rounded down, then the
    // complementary rounding up) — concavity requires
    // imp(m) >= (imp(a) + imp(b)) / 2 - tolerance for integer rounding.
    std::vector<int64_t> a(k), b(k), m(k), ra(k), rb(k), rm(k);
    bool exact_mid = true;
    for (int c = 0; c < k; ++c) {
      a[c] = rng.UniformInt(0, totals[c]);
      b[c] = rng.UniformInt(0, totals[c]);
      if ((a[c] + b[c]) % 2 != 0) exact_mid = false;
      m[c] = (a[c] + b[c]) / 2;
      ra[c] = totals[c] - a[c];
      rb[c] = totals[c] - b[c];
      rm[c] = totals[c] - m[c];
    }
    if (!exact_mid) continue;  // only test lattice midpoints exactly
    const double fa = imp->Eval(a.data(), ra.data(), k, total);
    const double fb = imp->Eval(b.data(), rb.data(), k, total);
    const double fm = imp->Eval(m.data(), rm.data(), k, total);
    EXPECT_GE(fm, 0.5 * (fa + fb) - 1e-12)
        << GetParam() << " not concave at rep " << rep;
  }
}

TEST_P(ImpurityConcavityTest, NonNegativeAndZeroOnPure) {
  auto imp = MakeImpurity(GetParam());
  Rng rng(11);
  for (int rep = 0; rep < 200; ++rep) {
    const int k = 2 + static_cast<int>(rng.UniformInt(0, 2));
    std::vector<int64_t> left(k, 0), right(k, 0);
    // Pure partition: left is all class 0, right all class 1.
    left[0] = rng.UniformInt(1, 50);
    right[1] = rng.UniformInt(1, 50);
    EXPECT_DOUBLE_EQ(
        imp->Eval(left.data(), right.data(), k, left[0] + right[1]), 0.0);
    // Random partition: non-negative.
    for (int c = 0; c < k; ++c) {
      left[c] = rng.UniformInt(0, 30);
      right[c] = rng.UniformInt(0, 30);
    }
    int64_t total = 0;
    for (int c = 0; c < k; ++c) total += left[c] + right[c];
    if (total == 0) continue;
    EXPECT_GE(imp->Eval(left.data(), right.data(), k, total), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllImpurities, ImpurityConcavityTest,
                         ::testing::Values("gini", "entropy",
                                           "misclassification"));

// --------------------------------------------- bound vs. realizable splits

TEST(BoundSoundnessProperty, CornerBoundNeverExceedsCandidateImpurity) {
  // Generate random numeric AVCs, chop the value range into random buckets,
  // and verify that every bucket's corner bound lower-bounds the impurity of
  // every candidate split inside that bucket.
  GiniImpurity gini;
  Rng rng(7);
  for (int rep = 0; rep < 100; ++rep) {
    const int k = 2 + static_cast<int>(rng.UniformInt(0, 1));
    NumericAvc avc(k);
    const int n = 50 + static_cast<int>(rng.UniformInt(0, 200));
    for (int i = 0; i < n; ++i) {
      avc.Add(static_cast<double>(rng.UniformInt(0, 40)),
              static_cast<int32_t>(rng.UniformInt(0, k - 1)));
    }
    avc.Finalize();
    const std::vector<int64_t> totals = avc.Totals();
    int64_t total = 0;
    for (const int64_t c : totals) total += c;

    const double boundary = static_cast<double>(rng.UniformInt(5, 35));
    // Bucket (-inf, boundary]: box [0, stamp(boundary)].
    std::vector<int64_t> stamp(k, 0);
    std::vector<int64_t> zeros(k, 0);
    std::vector<double> candidate_imps;
    for (int64_t i = 0; i < avc.num_values(); ++i) {
      if (avc.value(i) > boundary) break;
      const int64_t* row = avc.counts(i);
      for (int c = 0; c < k; ++c) stamp[c] += row[c];
      std::vector<int64_t> right(k);
      for (int c = 0; c < k; ++c) right[c] = totals[c] - stamp[c];
      candidate_imps.push_back(gini.Eval(stamp.data(), right.data(), k, total));
    }
    const double bound = CornerLowerBound(gini, zeros, stamp, totals, total);
    for (const double ci : candidate_imps) {
      EXPECT_GE(ci, bound - 1e-12);
    }
  }
}

// ------------------------------------------- randomized tree equivalence

struct RandomDatasetSpec {
  uint64_t seed;
  int num_numeric;
  int num_categorical;
  int num_classes;
  int num_tuples;
  int value_range;  // small => many duplicated values / point masses
};

class RandomEquivalenceTest
    : public ::testing::TestWithParam<RandomDatasetSpec> {};

TEST_P(RandomEquivalenceTest, BoatAndRainForestMatchReference) {
  const RandomDatasetSpec& spec = GetParam();
  Rng rng(spec.seed);

  std::vector<Attribute> attrs;
  for (int i = 0; i < spec.num_numeric; ++i) {
    attrs.push_back(Attribute::Numerical("n" + std::to_string(i)));
  }
  for (int i = 0; i < spec.num_categorical; ++i) {
    attrs.push_back(Attribute::Categorical(
        "c" + std::to_string(i), 2 + static_cast<int>(rng.UniformInt(0, 8))));
  }
  Schema schema(attrs, spec.num_classes);

  // Random ground truth: label depends on a couple of attributes plus noise,
  // so trees are non-trivial but finite.
  std::vector<Tuple> data;
  for (int i = 0; i < spec.num_tuples; ++i) {
    std::vector<double> values;
    for (int a = 0; a < spec.num_numeric; ++a) {
      values.push_back(
          static_cast<double>(rng.UniformInt(0, spec.value_range)));
    }
    for (int a = 0; a < spec.num_categorical; ++a) {
      values.push_back(static_cast<double>(
          rng.UniformInt(0, schema.attribute(spec.num_numeric + a)
                                    .cardinality -
                                1)));
    }
    int32_t label;
    if (rng.Bernoulli(0.15)) {
      label = static_cast<int32_t>(rng.UniformInt(0, spec.num_classes - 1));
    } else {
      double score = values[0];
      if (spec.num_categorical > 0) score += 7.0 * values[spec.num_numeric];
      label = static_cast<int32_t>(
          static_cast<int64_t>(score) % spec.num_classes);
    }
    data.push_back(Tuple(std::move(values), label));
  }

  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 12;
  DecisionTree reference = BuildTreeInMemory(schema, data, *selector, limits);

  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 2000;
    rf.inmem_threshold = 100;
    VectorSource source(schema, data);
    auto tree = BuildTreeRFHybrid(&source, *selector, rf);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Hybrid";
  }
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 2000;
    rf.inmem_threshold = 100;
    VectorSource source(schema, data);
    auto tree = BuildTreeRFVertical(&source, *selector, rf);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Vertical";
  }
  {
    BoatOptions options;
    options.limits = limits;
    options.sample_size = static_cast<size_t>(spec.num_tuples / 8);
    options.bootstrap_count = 8;
    options.bootstrap_subsample =
        std::max<size_t>(50, static_cast<size_t>(spec.num_tuples / 16));
    options.inmem_threshold = spec.num_tuples / 16;
    options.seed = spec.seed * 31 + 1;
    VectorSource source(schema, data);
    auto tree = BuildTreeBoat(&source, *selector, options);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference))
        << "BOAT\nref:\n"
        << reference.ToString() << "\ngot:\n"
        << tree->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDatasets, RandomEquivalenceTest,
    ::testing::Values(
        RandomDatasetSpec{101, 3, 0, 2, 3000, 40},
        RandomDatasetSpec{102, 0, 4, 2, 3000, 10},
        RandomDatasetSpec{103, 2, 2, 3, 3000, 25},
        RandomDatasetSpec{104, 1, 1, 4, 2500, 6},    // heavy point masses
        RandomDatasetSpec{105, 4, 3, 2, 4000, 200},  // near-continuous
        RandomDatasetSpec{106, 2, 0, 5, 3000, 15},
        RandomDatasetSpec{107, 1, 5, 3, 3500, 8},
        RandomDatasetSpec{108, 5, 1, 2, 3000, 3}));  // extreme duplication

// ------------------------------------------- randomized incremental updates

class RandomIncrementalTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomIncrementalTest, InterleavedInsertDeleteMatchesRebuild) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Schema schema({Attribute::Numerical("a"), Attribute::Numerical("b"),
                 Attribute::Categorical("c", 5)},
                2);
  auto draw = [&rng](int n) {
    std::vector<Tuple> out;
    for (int i = 0; i < n; ++i) {
      const double a = static_cast<double>(rng.UniformInt(0, 60));
      const double b = static_cast<double>(rng.UniformInt(0, 60));
      const double c = static_cast<double>(rng.UniformInt(0, 4));
      const int32_t label =
          (a + 2 * b > 90) != (c >= 3) ? 1 : 0;
      out.push_back(Tuple({a, b, c}, label));
    }
    return out;
  };

  std::vector<Tuple> base = draw(2500);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 12;
  BoatOptions options;
  options.limits = limits;
  options.sample_size = 400;
  options.bootstrap_count = 8;
  options.bootstrap_subsample = 200;
  options.inmem_threshold = 150;
  options.enable_updates = true;
  options.seed = seed;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();

  std::vector<Tuple> current = base;
  for (int round = 0; round < 3; ++round) {
    std::vector<Tuple> chunk = draw(800);
    ASSERT_TRUE((*classifier)->InsertChunk(chunk).ok());
    current.insert(current.end(), chunk.begin(), chunk.end());

    // Delete a slice of what is currently in the database.
    const size_t del_begin = current.size() / 4;
    const size_t del_end = del_begin + 400;
    std::vector<Tuple> to_delete(current.begin() + del_begin,
                                 current.begin() + del_end);
    ASSERT_TRUE((*classifier)->DeleteChunk(to_delete).ok());
    current.erase(current.begin() + del_begin, current.begin() + del_end);

    DecisionTree reference =
        BuildTreeInMemory(schema, current, *selector, limits);
    ASSERT_TRUE((*classifier)->tree().StructurallyEqual(reference))
        << "diverged at round " << round << " (seed " << seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomIncrementalTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

}  // namespace
}  // namespace boat
