// Unit tests for CSV import/export and the rule/dot tree exports.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "common/rng.h"
#include "common/str_util.h"
#include "storage/csv.h"
#include "storage/temp_file.h"
#include "tree/export.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }
  std::string WriteFile(const std::string& contents) {
    const std::string path = temp_->NewPath("csv");
    std::ofstream out(path);
    out << contents;
    return path;
  }
  std::unique_ptr<TempFileManager> temp_;
};

TEST_F(CsvTest, SplitCsvLineBasics) {
  EXPECT_EQ(SplitCsvLine("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine(" a , b ", ','),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitCsvLine("\"a,b\",c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("\"he said \"\"hi\"\"\",x", ','),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST_F(CsvTest, SplitCsvLineRfc4180Cases) {
  // A quote after leading whitespace still opens quoted mode (the parser
  // tracks quoting per field, not per line).
  EXPECT_EQ(SplitCsvLine("  \"a,b\"  ,c", ','),
            (std::vector<std::string>{"a,b", "c"}));
  // Whitespace *inside* quotes is content and survives verbatim.
  EXPECT_EQ(SplitCsvLine("\"  padded  \",x", ','),
            (std::vector<std::string>{"  padded  ", "x"}));
  // Doubled quotes in every position, including a field of one quote.
  EXPECT_EQ(SplitCsvLine("\"\"\"\",\"a\"\"b\"", ','),
            (std::vector<std::string>{"\"", "a\"b"}));
  // Empty quoted field vs missing field.
  EXPECT_EQ(SplitCsvLine("\"\",,x", ','),
            (std::vector<std::string>{"", "", "x"}));
  // Quoted delimiter and newline-free CRLF tail (getline leaves the \r).
  EXPECT_EQ(SplitCsvLine("a,\"b,c\",d\r", ','),
            (std::vector<std::string>{"a", "b,c", "d"}));
  EXPECT_EQ(SplitCsvLine("a,\"line end\"\r", ','),
            (std::vector<std::string>{"a", "line end"}));
  // A quote in the middle of an unquoted field is literal content.
  EXPECT_EQ(SplitCsvLine("it\"s,x", ','),
            (std::vector<std::string>{"it\"s", "x"}));
  // Trailing delimiter produces a trailing empty field.
  EXPECT_EQ(SplitCsvLine("a,b,", ','),
            (std::vector<std::string>{"a", "b", ""}));
}

TEST_F(CsvTest, WriteReadRoundTripsHostileStrings) {
  // Category and class names exercising every escaping rule: embedded
  // delimiters, quotes, doubled quotes, and leading/trailing whitespace
  // (which WriteCsv must quote, or the reader's trimming destroys it).
  const std::vector<std::string> cities = {
      "york,leeds", "he said \"hi\"", "  padded  ", "tab\there", "plain"};
  const std::vector<std::string> labels = {"no", "yes, definitely"};
  const Schema schema(
      {Attribute::Numerical("age"),
       Attribute::Categorical("city", static_cast<int>(cities.size()))},
      static_cast<int>(labels.size()));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.emplace_back(
        std::vector<double>{20.0 + i, static_cast<double>(i % cities.size())},
        i % 2);
  }
  const std::string path = temp_->NewPath("roundtrip");
  ASSERT_TRUE(WriteCsv(path, schema, tuples, {{}, cities}, labels).ok());

  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tuples.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(loaded->tuples[i].value(0), tuples[i].value(0)) << "row " << i;
    EXPECT_EQ(loaded->CategoryName(1, loaded->tuples[i].category(1)),
              cities[tuples[i].category(1)])
        << "row " << i;
    EXPECT_EQ(loaded->class_names[loaded->tuples[i].label()],
              labels[tuples[i].label()])
        << "row " << i;
  }
}

TEST_F(CsvTest, LoadInfersTypesAndDictionaries) {
  const std::string path = WriteFile(
      "age,city,income,approved\n"
      "34,york,51000,yes\n"
      "22,leeds,28000,no\n"
      "45,york,90000,yes\n"
      "31,bath,40000,no\n");
  auto dataset = LoadCsv(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const Schema& schema = dataset->schema;
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_TRUE(schema.IsNumerical(0));    // age
  EXPECT_TRUE(schema.IsCategorical(1));  // city
  EXPECT_TRUE(schema.IsNumerical(2));    // income
  EXPECT_EQ(schema.attribute(1).cardinality, 3);
  EXPECT_EQ(schema.num_classes(), 2);
  EXPECT_EQ(dataset->class_names, (std::vector<std::string>{"yes", "no"}));
  ASSERT_EQ(dataset->tuples.size(), 4u);
  EXPECT_EQ(dataset->tuples[0].value(0), 34);
  EXPECT_EQ(dataset->CategoryName(1, dataset->tuples[0].category(1)), "york");
  EXPECT_EQ(dataset->tuples[1].label(), 1);  // "no"
}

TEST_F(CsvTest, ExplicitLabelColumn) {
  const std::string path = WriteFile(
      "label,x\n"
      "a,1\n"
      "b,2\n");
  CsvOptions options;
  options.label_column = 0;
  auto dataset = LoadCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->schema.num_attributes(), 1);
  EXPECT_EQ(dataset->schema.attribute(0).name, "x");
  EXPECT_EQ(dataset->class_names, (std::vector<std::string>{"a", "b"}));
}

TEST_F(CsvTest, NoHeaderGeneratesColumnNames) {
  const std::string path = WriteFile("1,x,0\n2,y,1\n");
  CsvOptions options;
  options.has_header = false;
  auto dataset = LoadCsv(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->schema.attribute(0).name, "col0");
  EXPECT_EQ(dataset->schema.attribute(1).name, "col1");
}

TEST_F(CsvTest, RejectsBadInput) {
  EXPECT_EQ(LoadCsv(temp_->dir() + "/missing.csv").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(LoadCsv(WriteFile("h1,h2\n")).ok());        // no rows
  EXPECT_FALSE(LoadCsv(WriteFile("a,b\n1,2\n3\n")).ok());  // ragged
  EXPECT_FALSE(LoadCsv(WriteFile("x,label\n1,same\n2,same\n")).ok());  // 1 cls
}

TEST_F(CsvTest, RoundTripThroughWriteCsv) {
  const std::string path = WriteFile(
      "age,city,approved\n"
      "34,york,yes\n"
      "22,leeds,no\n"
      "45,\"york, north\",yes\n");
  auto dataset = LoadCsv(path);
  ASSERT_TRUE(dataset.ok());

  const std::string out_path = temp_->NewPath("out");
  ASSERT_TRUE(WriteCsv(out_path, dataset->schema, dataset->tuples,
                       dataset->categories, dataset->class_names)
                  .ok());
  auto again = LoadCsv(out_path);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->tuples, dataset->tuples);
  EXPECT_EQ(again->class_names, dataset->class_names);
  EXPECT_EQ(again->categories, dataset->categories);
}

TEST_F(CsvTest, TrainOnLoadedCsv) {
  // End-to-end: CSV -> schema -> tree.
  std::string contents = "x,c,label\n";
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int x = static_cast<int>(rng.UniformInt(0, 99));
    const char* c = rng.Bernoulli(0.5) ? "red" : "blue";
    contents += StrPrintf("%d,%s,%s\n", x, c, x < 50 ? "low" : "high");
  }
  auto dataset = LoadCsv(WriteFile(contents));
  ASSERT_TRUE(dataset.ok());
  auto selector = MakeGiniSelector();
  DecisionTree tree =
      BuildTreeInMemory(dataset->schema, dataset->tuples, *selector);
  EXPECT_DOUBLE_EQ(tree.MisclassificationRate(dataset->tuples), 0.0);
}

// ----------------------------------------------------------------- exports

DecisionTree SmallTree() {
  Schema schema({Attribute::Numerical("age"), Attribute::Categorical("city", 3)},
                2);
  auto inner =
      TreeNode::Internal(Split::Categorical(1, {0, 2}, 0.1), {5, 5},
                         TreeNode::Leaf({5, 0}), TreeNode::Leaf({0, 5}));
  auto root = TreeNode::Internal(Split::Numerical(0, 40.0, 0.2), {12, 8},
                                 TreeNode::Leaf({7, 3}), std::move(inner));
  return DecisionTree(std::move(schema), std::move(root));
}

TEST(ExportRulesTest, OneRulePerLeafWithNames) {
  ExportNames names;
  names.categories = {{}, {"york", "leeds", "bath"}};
  names.classes = {"approved", "rejected"};
  const std::string rules = ExportRules(SmallTree(), names);
  EXPECT_NE(rules.find("IF age <= 40"), std::string::npos);
  EXPECT_NE(rules.find("age > 40"), std::string::npos);
  EXPECT_NE(rules.find("city in {york, bath}"), std::string::npos);
  EXPECT_NE(rules.find("THEN class = approved"), std::string::npos);
  // Three leaves => three rules.
  EXPECT_EQ(std::count(rules.begin(), rules.end(), '\n'), 3);
}

TEST(ExportRulesTest, SingleLeafTree) {
  Schema schema({Attribute::Numerical("x")}, 2);
  DecisionTree tree(schema, TreeNode::Leaf({3, 1}));
  const std::string rules = ExportRules(tree);
  EXPECT_NE(rules.find("IF true THEN class = 0"), std::string::npos);
}

TEST(ExportDotTest, WellFormedGraph) {
  const std::string dot = ExportDot(SmallTree());
  EXPECT_EQ(dot.find("digraph decision_tree {"), 0u);
  EXPECT_NE(dot.find("n0 ->"), std::string::npos);
  EXPECT_NE(dot.find("label=\"yes\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"no\""), std::string::npos);
  // 5 nodes total.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(dot.find(StrPrintf("n%d [", i)), std::string::npos);
  }
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace boat
