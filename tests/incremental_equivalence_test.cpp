// The paper's exactness guarantee, end to end through the Session facade: a
// model maintained by an arbitrary sequence of insert/delete chunks is
// byte-identical (SerializeTree) to a model trained from scratch on the
// final training database — and from-scratch training itself is
// thread-count-invariant, so the streamed model matches rebuilds at 1 and 8
// threads alike. This is the property that lets CI compare a boatd instance
// fed drifting chunks against an offline `boatc train` on the final corpus.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "boat/session.h"
#include "datagen/agrawal.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/serialize.h"

namespace boat {
namespace {

std::vector<Tuple> Corpus(int function, uint64_t n, uint64_t seed) {
  AgrawalConfig config;
  config.function = function;
  config.noise = 0.05;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

SessionOptions SmallSessionOptions(int num_threads) {
  SessionOptions options;
  options.boat.sample_size = 600;
  options.boat.bootstrap_count = 8;
  options.boat.bootstrap_subsample = 200;
  options.boat.inmem_threshold = 250;
  options.boat.store_memory_budget = 256;
  options.boat.seed = 17;
  options.boat.num_threads = num_threads;
  return options;
}

class IncrementalEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }

  /// Trains from scratch on `db` with `num_threads` and returns the
  /// serialized tree.
  std::string FromScratch(const std::vector<Tuple>& db, int num_threads) {
    std::vector<Tuple> copy = db;
    VectorSource source(MakeAgrawalSchema(), copy);
    auto session =
        Session::Train(&source, temp_->NewPath("rebuild"),
                       SmallSessionOptions(num_threads));
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return session.ok() ? SerializeTree((*session)->tree()) : "";
  }

  std::unique_ptr<TempFileManager> temp_;
};

TEST_F(IncrementalEquivalenceTest, ChunkSequenceMatchesFromScratchRebuild) {
  // Base model on a clean F6 corpus.
  std::vector<Tuple> database = Corpus(6, 2500, 100);
  const std::string dir = temp_->NewPath("model");
  std::unique_ptr<Session> session;
  {
    VectorSource source(MakeAgrawalSchema(), database);
    auto trained =
        Session::Train(&source, dir, SmallSessionOptions(/*num_threads=*/1));
    ASSERT_TRUE(trained.ok()) << trained.status().ToString();
    session = std::move(trained).ValueOrDie();
  }

  // A mixed insert/delete history, including concept drift (F1-labeled
  // chunks into an F6 base) and removal of previously streamed chunks.
  const std::vector<Tuple> c0 = Corpus(1, 300, 201);
  const std::vector<Tuple> c1 = Corpus(1, 450, 202);
  const std::vector<Tuple> c2 = Corpus(6, 350, 203);
  const std::vector<Tuple> c3 = Corpus(1, 250, 204);
  struct Step {
    ChunkOp op;
    const std::vector<Tuple>* chunk;
  };
  const Step history[] = {
      {ChunkOp::kInsert, &c0}, {ChunkOp::kInsert, &c1},
      {ChunkOp::kDelete, &c0}, {ChunkOp::kInsert, &c2},
      {ChunkOp::kDelete, &c1}, {ChunkOp::kInsert, &c3},
  };

  for (const Step& step : history) {
    ASSERT_TRUE(session->Apply(step.op, *step.chunk).ok());
    if (step.op == ChunkOp::kInsert) {
      database.insert(database.end(), step.chunk->begin(), step.chunk->end());
    } else {
      // Remove one occurrence of each chunk tuple (chunks are only deleted
      // after being inserted whole, so erase-first-match is exact).
      for (const Tuple& t : *step.chunk) {
        for (auto it = database.begin(); it != database.end(); ++it) {
          if (*it == t) {
            database.erase(it);
            break;
          }
        }
      }
    }
  }
  EXPECT_EQ(session->revision(), 6u);

  const std::string streamed = SerializeTree(session->tree());
  // Identical to a from-scratch rebuild on the final database, and the
  // rebuild itself is thread-count-invariant.
  EXPECT_EQ(streamed, FromScratch(database, /*num_threads=*/1));
  EXPECT_EQ(streamed, FromScratch(database, /*num_threads=*/8));

  // The persisted directory carries the same tree (Apply persists), so an
  // offline reader sees exactly what a serving process would.
  auto reopened = Session::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(SerializeTree((*reopened)->tree()), streamed);
}

}  // namespace
}  // namespace boat
