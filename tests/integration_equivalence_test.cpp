// Integration tests for the paper's central guarantee: RainForest and BOAT
// construct *exactly* the tree the traditional in-memory algorithm builds —
// on static data, under the paper-methodology stopping rule, for multiple
// split selection methods, and (for BOAT) across incremental insertions and
// deletions.

#include <gtest/gtest.h>

#include <memory>

#include "boat/builder.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

std::unique_ptr<VectorSource> SourceOf(const Schema& schema,
                                       std::vector<Tuple> tuples) {
  return std::make_unique<VectorSource>(schema, std::move(tuples));
}

BoatOptions SmallBoatOptions() {
  BoatOptions options;
  options.sample_size = 800;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 400;
  options.inmem_threshold = 300;
  options.store_memory_budget = 512;  // force some spilling
  options.max_buckets_per_attr = 64;
  options.seed = 7;
  return options;
}

struct EquivalenceCase {
  int function;
  double noise;
  int extra_attrs;
  const char* impurity;  // "gini", "entropy" or "quest"
  int64_t stop_family;   // 0 = grow fully
};

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, AllAlgorithmsProduceTheReferenceTree) {
  const EquivalenceCase& param = GetParam();
  AgrawalConfig config;
  config.function = param.function;
  config.noise = param.noise;
  config.extra_numeric_attrs = param.extra_attrs;
  config.seed = 20240000 + param.function;
  const Schema schema = MakeAgrawalSchema(param.extra_attrs);
  std::vector<Tuple> data = GenerateAgrawal(config, 6000);

  std::unique_ptr<SplitSelector> selector;
  if (std::string(param.impurity) == "quest") {
    selector = std::make_unique<QuestSelector>();
  } else {
    selector = std::make_unique<ImpuritySplitSelector>(
        MakeImpurity(param.impurity));
  }
  GrowthLimits limits;
  limits.max_depth = 24;
  limits.stop_family_size = param.stop_family;

  DecisionTree reference = BuildTreeInMemory(schema, data, *selector, limits);
  ASSERT_GT(reference.num_nodes(), 1u)
      << "degenerate reference tree; test would be vacuous";

  // RF-Hybrid with a buffer large enough for single-scan levels.
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 1 << 22;
    rf.inmem_threshold = 500;
    auto source = SourceOf(schema, data);
    auto tree = BuildTreeRFHybrid(source.get(), *selector, rf);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_TRUE(tree->StructurallyEqual(reference))
        << "RF-Hybrid diverged\nref:\n"
        << reference.ToString() << "\ngot:\n"
        << tree->ToString();
  }
  // RF-Hybrid with a tiny buffer (forces deferred partitions).
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 4000;
    rf.inmem_threshold = 300;
    auto source = SourceOf(schema, data);
    auto tree = BuildTreeRFHybrid(source.get(), *selector, rf);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Hybrid(small)";
  }
  // RF-Vertical with a small buffer (multiple scans per level).
  {
    RainForestOptions rf;
    rf.limits = limits;
    rf.avc_buffer_entries = 8000;
    rf.inmem_threshold = 300;
    auto source = SourceOf(schema, data);
    auto tree = BuildTreeRFVertical(source.get(), *selector, rf);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "RF-Vertical";
  }
  // BOAT.
  {
    BoatOptions options = SmallBoatOptions();
    options.limits = limits;
    auto source = SourceOf(schema, data);
    BoatStats stats;
    auto tree = BuildTreeBoat(source.get(), *selector, options, &stats);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_TRUE(tree->StructurallyEqual(reference))
        << "BOAT diverged\nref:\n"
        << reference.ToString() << "\ngot:\n"
        << tree->ToString();
    EXPECT_EQ(stats.db_size, 6000u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Functions, EquivalenceTest,
    ::testing::Values(
        EquivalenceCase{1, 0.0, 0, "gini", 0},
        EquivalenceCase{1, 0.1, 0, "gini", 0},
        EquivalenceCase{2, 0.0, 0, "gini", 0},
        EquivalenceCase{3, 0.05, 0, "gini", 0},
        EquivalenceCase{4, 0.0, 0, "entropy", 0},
        EquivalenceCase{5, 0.0, 0, "gini", 0},
        EquivalenceCase{6, 0.0, 0, "gini", 0},
        EquivalenceCase{6, 0.1, 2, "gini", 0},
        EquivalenceCase{7, 0.0, 0, "gini", 0},
        EquivalenceCase{7, 0.05, 0, "entropy", 0},
        EquivalenceCase{1, 0.0, 0, "gini", 400},   // paper-style stop rule
        EquivalenceCase{6, 0.02, 0, "gini", 400},
        EquivalenceCase{7, 0.0, 0, "gini", 400},
        EquivalenceCase{1, 0.0, 0, "quest", 0},
        EquivalenceCase{6, 0.05, 0, "quest", 0},
        EquivalenceCase{7, 0.0, 0, "quest", 400}));

TEST(IncrementalEquivalenceTest, InsertionsMatchFullRebuild) {
  AgrawalConfig config;
  config.function = 1;
  config.noise = 0.1;
  config.seed = 555;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> all = GenerateAgrawal(config, 9000);
  std::vector<Tuple> base(all.begin(), all.begin() + 5000);

  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 20;

  BoatOptions options = SmallBoatOptions();
  options.limits = limits;
  options.enable_updates = true;

  auto source = SourceOf(schema, base);
  auto classifier =
      BoatClassifier::Train(source.get(), selector.get(), options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();

  size_t cursor = 5000;
  const size_t chunk_size = 2000;
  while (cursor < all.size()) {
    const size_t end = std::min(all.size(), cursor + chunk_size);
    std::vector<Tuple> chunk(all.begin() + cursor, all.begin() + end);
    cursor = end;
    BoatStats stats;
    ASSERT_TRUE((*classifier)->InsertChunk(chunk, &stats).ok());

    std::vector<Tuple> so_far(all.begin(), all.begin() + cursor);
    DecisionTree reference =
        BuildTreeInMemory(schema, so_far, *selector, limits);
    EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference))
        << "after inserting up to " << cursor << "\nref:\n"
        << reference.ToString() << "\ngot:\n"
        << (*classifier)->tree().ToString();
  }
}

TEST(IncrementalEquivalenceTest, DeletionsMatchFullRebuild) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 777;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> all = GenerateAgrawal(config, 8000);

  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 20;

  BoatOptions options = SmallBoatOptions();
  options.limits = limits;
  options.enable_updates = true;

  auto source = SourceOf(schema, all);
  auto classifier =
      BoatClassifier::Train(source.get(), selector.get(), options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();

  // Delete the middle chunk (a random sample from the same distribution).
  std::vector<Tuple> chunk(all.begin() + 3000, all.begin() + 5000);
  BoatStats stats;
  ASSERT_TRUE((*classifier)->DeleteChunk(chunk, &stats).ok());

  std::vector<Tuple> remaining(all.begin(), all.begin() + 3000);
  remaining.insert(remaining.end(), all.begin() + 5000, all.end());
  DecisionTree reference =
      BuildTreeInMemory(schema, remaining, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference))
      << "ref:\n"
      << reference.ToString() << "\ngot:\n"
      << (*classifier)->tree().ToString();
}

TEST(IncrementalEquivalenceTest, DistributionDriftIsRepaired) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 99;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> base = GenerateAgrawal(config, 6000);

  AgrawalConfig drifted = config;
  drifted.drift = Drift::kRelabelOldAge;
  drifted.seed = 100;
  std::vector<Tuple> chunk = GenerateAgrawal(drifted, 6000);

  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 20;
  BoatOptions options = SmallBoatOptions();
  options.limits = limits;
  options.enable_updates = true;

  auto source = SourceOf(schema, base);
  auto classifier =
      BoatClassifier::Train(source.get(), selector.get(), options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();

  BoatStats stats;
  ASSERT_TRUE((*classifier)->InsertChunk(chunk, &stats).ok());

  std::vector<Tuple> all = base;
  all.insert(all.end(), chunk.begin(), chunk.end());
  DecisionTree reference = BuildTreeInMemory(schema, all, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference));
}

}  // namespace
}  // namespace boat
