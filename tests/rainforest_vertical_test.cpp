// Focused tests for RF-Vertical's attribute-group scheduling and the
// distinct-value bound inheritance shared by both RainForest variants.

#include <gtest/gtest.h>

#include "common/io_stats.h"
#include "common/rng.h"
#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

std::vector<Tuple> Data(int function, int n, uint64_t seed,
                        double noise = 0.0) {
  AgrawalConfig config;
  config.function = function;
  config.noise = noise;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

TEST(RFVerticalTest, ScansScaleInverselyWithBuffer) {
  const Schema schema = MakeAgrawalSchema();
  auto data = Data(7, 6000, 81);
  auto selector = MakeGiniSelector();

  auto scans_with_buffer = [&](int64_t buffer) {
    RainForestOptions options;
    options.avc_buffer_entries = buffer;
    options.inmem_threshold = 500;
    VectorSource source(schema, data);
    RainForestStats stats;
    auto tree = BuildTreeRFVertical(&source, *selector, options, &stats);
    CheckOk(tree.status());
    return stats.scans;
  };
  const uint64_t tight = scans_with_buffer(2'000);
  const uint64_t medium = scans_with_buffer(20'000);
  const uint64_t roomy = scans_with_buffer(1 << 24);
  EXPECT_GT(tight, medium);
  EXPECT_GE(medium, roomy);
}

TEST(RFVerticalTest, AllBufferSizesProduceTheSameTree) {
  const Schema schema = MakeAgrawalSchema();
  auto data = Data(6, 5000, 82, 0.05);
  auto selector = MakeGiniSelector();
  DecisionTree reference = BuildTreeInMemory(schema, data, *selector);

  for (const int64_t buffer : {1500LL, 8000LL, 60000LL, 1LL << 24}) {
    RainForestOptions options;
    options.avc_buffer_entries = buffer;
    options.inmem_threshold = 400;
    VectorSource source(schema, data);
    auto tree = BuildTreeRFVertical(&source, *selector, options);
    ASSERT_TRUE(tree.ok());
    EXPECT_TRUE(tree->StructurallyEqual(reference))
        << "buffer " << buffer << " diverged";
  }
}

TEST(RFVerticalTest, QuestSelectorUnderVerticalScans) {
  // The per-attribute selector interface is exactly what vertical scanning
  // relies on; verify it with the non-impurity method too.
  const Schema schema = MakeAgrawalSchema();
  auto data = Data(7, 4000, 83, 0.05);
  QuestSelector selector;
  DecisionTree reference = BuildTreeInMemory(schema, data, selector);

  RainForestOptions options;
  options.avc_buffer_entries = 3000;
  options.inmem_threshold = 300;
  VectorSource source(schema, data);
  auto tree = BuildTreeRFVertical(&source, selector, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(RFHybridTest, DistinctBoundInheritanceReducesDeferrals) {
  // Age has only 61 distinct values. Without bound inheritance a child
  // family of 3000 tuples would be estimated at 3000 entries for age; with
  // inheritance it is min(3000, 61)*k. Measure deferral difference via the
  // partition tuple counts under a buffer sized between the two estimates.
  Schema schema({Attribute::Numerical("age"), Attribute::Numerical("wide")},
                2);
  Rng rng(84);
  std::vector<Tuple> data;
  for (int i = 0; i < 8000; ++i) {
    const double age = static_cast<double>(rng.UniformInt(20, 80));
    const double wide = static_cast<double>(rng.UniformInt(0, 1000000));
    const int32_t label = (age < 40 || age >= 60) ? 0 : 1;
    data.push_back(Tuple({age, wide}, label));
  }
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  // Enough for age AVCs at every node plus one wide AVC, not for all wide
  // AVCs of a level at face-value estimates.
  options.avc_buffer_entries = 10'000;
  options.inmem_threshold = 0;
  options.limits.max_depth = 6;
  VectorSource source(schema, data);
  RainForestStats stats;
  auto tree = BuildTreeRFHybrid(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  DecisionTree reference =
      BuildTreeInMemory(schema, data, *selector, options.limits);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(RFVerticalTest, ManyExtraAttributesStillExact) {
  const Schema schema = MakeAgrawalSchema(6);
  AgrawalConfig config;
  config.function = 1;
  config.extra_numeric_attrs = 6;
  config.seed = 85;
  auto data = GenerateAgrawal(config, 4000);
  auto selector = MakeGiniSelector();
  DecisionTree reference = BuildTreeInMemory(schema, data, *selector);

  RainForestOptions options;
  options.avc_buffer_entries = 4000;  // forces many groups over 15 attrs
  options.inmem_threshold = 300;
  VectorSource source(schema, data);
  RainForestStats stats;
  auto tree = BuildTreeRFVertical(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->StructurallyEqual(reference));
  EXPECT_GT(stats.scans, 4u);  // several attribute groups per level
}

}  // namespace
}  // namespace boat
