// Tests for model persistence: a saved-and-reloaded classifier must carry
// the identical tree AND continue incremental maintenance with the exactness
// guarantee intact (including deletions of pre-save tuples, which exercise
// the restored S_n stores, trackers and archive).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "boat/persistence.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "storage/temp_file.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }

  BoatOptions Options() const {
    BoatOptions options;
    options.sample_size = 800;
    options.bootstrap_count = 8;
    options.bootstrap_subsample = 300;
    options.inmem_threshold = 300;
    options.store_memory_budget = 256;
    options.enable_updates = true;
    options.seed = 11;
    return options;
  }

  std::unique_ptr<TempFileManager> temp_;
};

TEST_F(PersistenceTest, RoundTripPreservesTree) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 100;
  const Schema schema = MakeAgrawalSchema();
  auto data = GenerateAgrawal(config, 5000);
  auto selector = MakeGiniSelector();

  VectorSource source(schema, data);
  auto classifier =
      BoatClassifier::Train(&source, selector.get(), Options());
  ASSERT_TRUE(classifier.ok());

  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());

  auto loaded = LoadClassifier(dir, selector.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual((*classifier)->tree()));
}

TEST_F(PersistenceTest, UpdatesContinueAfterReload) {
  AgrawalConfig config;
  config.function = 1;
  config.noise = 0.08;
  config.seed = 101;
  const Schema schema = MakeAgrawalSchema();
  auto base = GenerateAgrawal(config, 5000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 16;
  BoatOptions options = Options();
  options.limits = limits;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());

  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
  auto loaded = LoadClassifier(dir, selector.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Insert into the reloaded model; result must equal a from-scratch build.
  AgrawalConfig chunk_config = config;
  chunk_config.seed = 102;
  auto chunk = GenerateAgrawal(chunk_config, 3000);
  ASSERT_TRUE((*loaded)->InsertChunk(chunk).ok());

  std::vector<Tuple> all = base;
  all.insert(all.end(), chunk.begin(), chunk.end());
  DecisionTree reference = BuildTreeInMemory(schema, all, *selector, limits);
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual(reference))
      << "ref:\n"
      << reference.ToString() << "\ngot:\n"
      << (*loaded)->tree().ToString();
}

TEST_F(PersistenceTest, DeletionOfPreSaveTuplesAfterReload) {
  // Deleting tuples that were inserted before the save exercises the
  // restored retained stores, extreme trackers and archive tombstones.
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 103;
  const Schema schema = MakeAgrawalSchema();
  auto base = GenerateAgrawal(config, 5000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 16;
  BoatOptions options = Options();
  options.limits = limits;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());
  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
  auto loaded = LoadClassifier(dir, selector.get());
  ASSERT_TRUE(loaded.ok());

  std::vector<Tuple> doomed(base.begin() + 1000, base.begin() + 2500);
  ASSERT_TRUE((*loaded)->DeleteChunk(doomed).ok());

  std::vector<Tuple> remaining(base.begin(), base.begin() + 1000);
  remaining.insert(remaining.end(), base.begin() + 2500, base.end());
  DecisionTree reference =
      BuildTreeInMemory(schema, remaining, *selector, limits);
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual(reference));
}

TEST_F(PersistenceTest, QuestModelRoundTrips) {
  AgrawalConfig config;
  config.function = 7;
  config.noise = 0.05;
  config.seed = 104;
  const Schema schema = MakeAgrawalSchema();
  auto base = GenerateAgrawal(config, 4000);
  QuestSelector selector;
  GrowthLimits limits;
  limits.max_depth = 12;
  BoatOptions options = Options();
  options.limits = limits;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, &selector, options);
  ASSERT_TRUE(classifier.ok());
  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
  auto loaded = LoadClassifier(dir, &selector);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual((*classifier)->tree()));

  // Moments survived: an update still matches the reference.
  AgrawalConfig chunk_config = config;
  chunk_config.seed = 105;
  auto chunk = GenerateAgrawal(chunk_config, 2000);
  ASSERT_TRUE((*loaded)->InsertChunk(chunk).ok());
  std::vector<Tuple> all = base;
  all.insert(all.end(), chunk.begin(), chunk.end());
  DecisionTree reference = BuildTreeInMemory(schema, all, selector, limits);
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual(reference));
}

TEST_F(PersistenceTest, RejectsWrongSelector) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 106;
  const Schema schema = MakeAgrawalSchema();
  auto data = GenerateAgrawal(config, 2000);
  auto gini = MakeGiniSelector();
  VectorSource source(schema, data);
  auto classifier = BoatClassifier::Train(&source, gini.get(), Options());
  ASSERT_TRUE(classifier.ok());
  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());

  QuestSelector quest;
  auto loaded = LoadClassifier(dir, &quest);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  auto entropy = MakeEntropySelector();
  EXPECT_FALSE(LoadClassifier(dir, entropy.get()).ok());
}

TEST_F(PersistenceTest, RejectsMissingOrCorruptModel) {
  auto selector = MakeGiniSelector();
  EXPECT_EQ(LoadClassifier(temp_->dir() + "/nope", selector.get())
                .status()
                .code(),
            StatusCode::kNotFound);

  const std::string dir = temp_->NewPath("garbage");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/manifest.boatmodel") << "not a model\n";
  EXPECT_FALSE(LoadClassifier(dir, selector.get()).ok());
}

TEST_F(PersistenceTest, NonUpdatableModelRoundTrips) {
  AgrawalConfig config;
  config.function = 6;
  config.seed = 107;
  const Schema schema = MakeAgrawalSchema();
  auto data = GenerateAgrawal(config, 3000);
  auto selector = MakeGiniSelector();
  BoatOptions options = Options();
  options.enable_updates = false;  // no archive in the saved model
  VectorSource source(schema, data);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());
  const std::string dir = temp_->NewPath("model");
  ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
  auto loaded = LoadClassifier(dir, selector.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->tree().StructurallyEqual((*classifier)->tree()));
  EXPECT_EQ((*loaded)->InsertChunk(data).code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace boat
