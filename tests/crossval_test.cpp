// Tests for BOAT-accelerated cross-validation: every fold tree must equal an
// in-memory build on its fold-complement (the exactness guarantee, fold by
// fold), scan counts must stay constant in k, and the evaluation statistics
// must be coherent.

#include <gtest/gtest.h>

#include "boat/crossval.h"
#include "common/io_stats.h"
#include "datagen/agrawal.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

BoatOptions CvOptions() {
  BoatOptions options;
  options.sample_size = 800;
  options.bootstrap_count = 8;
  options.bootstrap_subsample = 300;
  options.inmem_threshold = 400;
  options.limits.max_depth = 16;
  options.seed = 21;
  return options;
}

TEST(CrossValidationFoldTest, DeterministicAndCoversAllFolds) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 1;
  auto data = GenerateAgrawal(config, 2000);
  std::vector<int64_t> counts(5, 0);
  for (const Tuple& t : data) {
    const int f = CrossValidationFold(t, 5, 99);
    EXPECT_EQ(f, CrossValidationFold(t, 5, 99));  // stable
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 5);
    ++counts[f];
  }
  for (const int64_t c : counts) {
    EXPECT_GT(c, 250);  // roughly balanced
    EXPECT_LT(c, 550);
  }
}

TEST(CrossValidationFoldTest, SeedChangesAssignment) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 2;
  auto data = GenerateAgrawal(config, 500);
  int differing = 0;
  for (const Tuple& t : data) {
    if (CrossValidationFold(t, 4, 1) != CrossValidationFold(t, 4, 2)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 200);
}

TEST(BoatCrossValidateTest, FoldTreesMatchReferenceBuilds) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 3;
  const Schema schema = MakeAgrawalSchema();
  auto data = GenerateAgrawal(config, 6000);
  auto selector = MakeGiniSelector();
  const BoatOptions options = CvOptions();
  const int kFolds = 4;

  VectorSource source(schema, data);
  auto cv = BoatCrossValidate(&source, kFolds, *selector, options);
  ASSERT_TRUE(cv.ok()) << cv.status().ToString();
  ASSERT_EQ(cv->fold_trees.size(), static_cast<size_t>(kFolds));
  EXPECT_EQ(cv->db_size, 6000u);

  const uint64_t fold_seed = options.seed * 1000003 + 17;
  for (int f = 0; f < kFolds; ++f) {
    std::vector<Tuple> complement;
    for (const Tuple& t : data) {
      if (CrossValidationFold(t, kFolds, fold_seed) != f) {
        complement.push_back(t);
      }
    }
    DecisionTree reference =
        BuildTreeInMemory(schema, complement, *selector, options.limits);
    EXPECT_TRUE(cv->fold_trees[f].StructurallyEqual(reference))
        << "fold " << f << " diverged";
  }
}

TEST(BoatCrossValidateTest, AccuracyIsSensible) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 4;
  const Schema schema = MakeAgrawalSchema();
  auto data = GenerateAgrawal(config, 8000);
  auto selector = MakeGiniSelector();

  VectorSource source(schema, data);
  auto cv = BoatCrossValidate(&source, 5, *selector, CvOptions());
  ASSERT_TRUE(cv.ok());
  EXPECT_GT(cv->mean_accuracy, 0.97);  // F1 without noise is easy
  EXPECT_GE(cv->stddev_accuracy, 0.0);
  int64_t evaluated = 0;
  for (const ConfusionMatrix& cm : cv->fold_confusion) {
    evaluated += cm.total();
  }
  EXPECT_EQ(evaluated, 8000);  // every tuple held out exactly once
}

TEST(BoatCrossValidateTest, ScanCountIndependentOfFoldCount) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const std::string table = temp->NewPath("cv");
  AgrawalConfig config;
  config.function = 6;
  config.seed = 5;
  ASSERT_TRUE(GenerateAgrawalTable(config, 8000, table).ok());
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();

  auto scans_for = [&](int folds) -> uint64_t {
    auto source = TableScanSource::Open(table, schema);
    CheckOk(source.status());
    ResetIoStats();
    auto cv = BoatCrossValidate(source->get(), folds, *selector, CvOptions());
    CheckOk(cv.status());
    return GetIoStats().scans_started;
  };
  const uint64_t scans2 = scans_for(2);
  const uint64_t scans8 = scans_for(8);
  // 3 shared scans plus rare repair rescans; independent of k up to repairs.
  EXPECT_LE(scans2, 8u);
  EXPECT_LE(scans8, scans2 + 8);  // not growing ~4x with k
}

TEST(BoatCrossValidateTest, RejectsDegenerateFoldCount) {
  const Schema schema = MakeAgrawalSchema();
  VectorSource source(schema, GenerateAgrawal(AgrawalConfig(), 100));
  auto selector = MakeGiniSelector();
  EXPECT_FALSE(BoatCrossValidate(&source, 1, *selector, CvOptions()).ok());
}

}  // namespace
}  // namespace boat
