// Runtime tests for the annotated sync primitives (common/sync.h).
//
// The Clang thread-safety gate proves locking *contracts* at compile time;
// these tests prove the wrappers' runtime *semantics*: real mutual
// exclusion, predicate waits that survive spurious wakeups (a notify
// without the condition must not let the waiter through), timed waits that
// actually time out, and the equivalence of notifying under the lock vs
// after releasing it. Runs in the TSan CI matrix, where the wrappers'
// lock/unlock edges are also checked dynamically.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace boat {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(SyncTest, MutexProvidesMutualExclusion) {
  Mutex mu;
  int64_t counter = 0;  // deliberately non-atomic: the mutex is the guard
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfterUnlock) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> grabbed{false};
  std::thread contender([&] { grabbed.store(mu.TryLock()); });
  contender.join();
  EXPECT_FALSE(grabbed.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

// The predicate overload must re-check after every wakeup: a NotifyAll
// with the condition still false (a manufactured spurious wakeup) may not
// release the waiter.
TEST(SyncTest, PredicateWaitIgnoresNotifyWithoutCondition) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    MutexLock lock(mu);
    cv.Wait(lock, [&] {
      mu.AssertHeld();
      return ready;
    });
    woke.store(true, std::memory_order_release);
  });

  // Hammer the condvar without establishing the condition; the waiter must
  // re-block every time. (Sleeps give the waiter scheduler slots; the
  // assertion does not depend on their length.)
  for (int i = 0; i < 10; ++i) {
    cv.NotifyAll();
    std::this_thread::sleep_for(milliseconds(1));
    ASSERT_FALSE(woke.load(std::memory_order_acquire));
  }

  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(SyncTest, WaitUntilTimesOutWhenConditionNeverHolds) {
  Mutex mu;
  CondVar cv;
  bool never = false;
  const auto start = steady_clock::now();
  const auto deadline = start + milliseconds(50);
  MutexLock lock(mu);
  const bool satisfied = cv.WaitUntil(lock, deadline, [&] {
    mu.AssertHeld();
    return never;
  });
  EXPECT_FALSE(satisfied);
  // The wait must have actually blocked until (at least) the deadline.
  EXPECT_GE(steady_clock::now(), deadline);
}

TEST(SyncTest, WaitUntilReturnsTrueOnceConditionHolds) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread setter([&] {
    std::this_thread::sleep_for(milliseconds(5));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    // A generous deadline: the test asserts the success path, not timing.
    const bool satisfied =
        cv.WaitUntil(lock, steady_clock::now() + milliseconds(10000), [&] {
          mu.AssertHeld();
          return ready;
        });
    EXPECT_TRUE(satisfied);
    EXPECT_TRUE(ready);
  }
  setter.join();
}

// Both notify placements must release a predicate waiter: under the lock
// (what WaitGroup::Done does so a waiter cannot destroy the CondVar while
// the notify is in flight) and after unlocking (the common low-contention
// pattern used by Trainer::ApplyLoop). Referenced from sync.h.
TEST(SyncTest, NotifyUnderLockAndAfterUnlockAreEquivalent) {
  for (const bool notify_under_lock : {true, false}) {
    Mutex mu;
    CondVar cv;
    int generation = 0;
    constexpr int kRounds = 100;
    std::thread waiter([&] {
      for (int g = 1; g <= kRounds; ++g) {
        MutexLock lock(mu);
        cv.Wait(lock, [&] {
          mu.AssertHeld();
          return generation >= g;
        });
      }
    });
    for (int g = 1; g <= kRounds; ++g) {
      if (notify_under_lock) {
        MutexLock lock(mu);
        ++generation;
        cv.NotifyAll();
      } else {
        {
          MutexLock lock(mu);
          ++generation;
        }
        cv.NotifyAll();
      }
    }
    waiter.join();  // termination of every round IS the assertion
    EXPECT_EQ(generation, kRounds);
  }
}

}  // namespace
}  // namespace boat
