// Unit tests for the Agrawal synthetic data generator.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/agrawal.h"
#include "storage/temp_file.h"

namespace boat {
namespace {

TEST(AgrawalSchemaTest, NinePredictorAttributes) {
  Schema s = MakeAgrawalSchema();
  EXPECT_EQ(s.num_attributes(), 9);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_TRUE(s.IsNumerical(kSalary));
  EXPECT_TRUE(s.IsCategorical(kElevel));
  EXPECT_EQ(s.attribute(kElevel).cardinality, 5);
  EXPECT_EQ(s.attribute(kCar).cardinality, 20);
  EXPECT_EQ(s.attribute(kZipcode).cardinality, 9);
}

TEST(AgrawalSchemaTest, ExtraAttributesAppended) {
  Schema s = MakeAgrawalSchema(3);
  EXPECT_EQ(s.num_attributes(), 12);
  EXPECT_EQ(s.attribute(9).name, "extra0");
  EXPECT_TRUE(s.IsNumerical(11));
}

TEST(AgrawalGeneratorTest, DeterministicAndRestartable) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 42;
  AgrawalGenerator gen(config, 100);
  std::vector<Tuple> first;
  Tuple t;
  while (gen.Next(&t)) first.push_back(t);
  EXPECT_EQ(first.size(), 100u);
  ASSERT_TRUE(gen.Reset().ok());
  std::vector<Tuple> second;
  while (gen.Next(&t)) second.push_back(t);
  EXPECT_EQ(first, second);
}

TEST(AgrawalGeneratorTest, AttributeDomains) {
  AgrawalConfig config;
  config.function = 7;
  config.seed = 9;
  for (const Tuple& t : GenerateAgrawal(config, 2000)) {
    EXPECT_GE(t.value(kSalary), 20000);
    EXPECT_LE(t.value(kSalary), 150000);
    if (t.value(kSalary) >= 75000) {
      EXPECT_EQ(t.value(kCommission), 0);
    } else {
      EXPECT_GE(t.value(kCommission), 10000);
      EXPECT_LE(t.value(kCommission), 75000);
    }
    EXPECT_GE(t.value(kAge), 20);
    EXPECT_LE(t.value(kAge), 80);
    EXPECT_GE(t.category(kElevel), 0);
    EXPECT_LE(t.category(kElevel), 4);
    EXPECT_GE(t.category(kCar), 0);
    EXPECT_LE(t.category(kCar), 19);
    EXPECT_GE(t.category(kZipcode), 0);
    EXPECT_LE(t.category(kZipcode), 8);
    const double k = t.category(kZipcode) + 1;
    EXPECT_GE(t.value(kHvalue), 50000 * k);
    EXPECT_LE(t.value(kHvalue), 150000 * k);
    EXPECT_GE(t.value(kHyears), 1);
    EXPECT_LE(t.value(kHyears), 30);
    EXPECT_GE(t.value(kLoan), 0);
    EXPECT_LE(t.value(kLoan), 500000);
    // Integer-valued numerics (bounded AVC domains, as in the original).
    for (int a : {kSalary, kCommission, kAge, kHvalue, kHyears, kLoan}) {
      EXPECT_EQ(t.value(a), std::floor(t.value(a)));
    }
  }
}

TEST(AgrawalGeneratorTest, Function1LabelsMatchPredicate) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 13;
  for (const Tuple& t : GenerateAgrawal(config, 1000)) {
    const bool group_a = t.value(kAge) < 40 || t.value(kAge) >= 60;
    EXPECT_EQ(t.label(), group_a ? 0 : 1);
    EXPECT_EQ(AgrawalGenerator::Classify(1, t), t.label());
  }
}

TEST(AgrawalGeneratorTest, Function6UsesSalaryPlusCommission) {
  AgrawalConfig config;
  config.function = 6;
  config.seed = 14;
  for (const Tuple& t : GenerateAgrawal(config, 1000)) {
    const double sc = t.value(kSalary) + t.value(kCommission);
    const double age = t.value(kAge);
    const bool group_a =
        (age < 40 && sc >= 50000 && sc <= 100000) ||
        (age >= 40 && age < 60 && sc >= 75000 && sc <= 125000) ||
        (age >= 60 && sc >= 25000 && sc <= 75000);
    EXPECT_EQ(t.label(), group_a ? 0 : 1);
  }
}

TEST(AgrawalGeneratorTest, Function7IsLinear) {
  AgrawalConfig config;
  config.function = 7;
  config.seed = 15;
  for (const Tuple& t : GenerateAgrawal(config, 1000)) {
    const double disposable =
        (2.0 / 3.0) * (t.value(kSalary) + t.value(kCommission)) -
        0.2 * t.value(kLoan) - 20000;
    EXPECT_EQ(t.label(), disposable > 0 ? 0 : 1);
  }
}

TEST(AgrawalGeneratorTest, AllFunctionsProduceBothClasses) {
  for (int f = 1; f <= 10; ++f) {
    AgrawalConfig config;
    config.function = f;
    config.seed = 100 + static_cast<uint64_t>(f);
    int64_t counts[2] = {0, 0};
    for (const Tuple& t : GenerateAgrawal(config, 4000)) ++counts[t.label()];
    EXPECT_GT(counts[0], 0) << "function " << f;
    EXPECT_GT(counts[1], 0) << "function " << f;
  }
}

TEST(AgrawalGeneratorTest, NoiseFlipsRoughlyHalfOfAffectedLabels) {
  // With noise p, a label is replaced by a random one, so ~p/2 of records
  // end up mislabeled relative to the pure function.
  AgrawalConfig noisy;
  noisy.function = 1;
  noisy.noise = 0.2;
  noisy.seed = 77;
  int64_t mismatches = 0;
  const int n = 20000;
  for (const Tuple& t : GenerateAgrawal(noisy, n)) {
    if (AgrawalGenerator::Classify(1, t) != t.label()) ++mismatches;
  }
  const double rate = static_cast<double>(mismatches) / n;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(AgrawalGeneratorTest, NoiseDoesNotPerturbAttributeStream) {
  AgrawalConfig clean;
  clean.function = 1;
  clean.seed = 500;
  AgrawalConfig noisy = clean;
  noisy.noise = 0.5;
  const auto a = GenerateAgrawal(clean, 200);
  const auto b = GenerateAgrawal(noisy, 200);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values(), b[i].values()) << "attribute stream diverged";
  }
}

TEST(AgrawalGeneratorTest, DriftRelabelsOnlyOldAge) {
  AgrawalConfig base;
  base.function = 1;
  base.seed = 321;
  AgrawalConfig drifted = base;
  drifted.drift = Drift::kRelabelOldAge;
  const auto a = GenerateAgrawal(base, 2000);
  const auto b = GenerateAgrawal(drifted, 2000);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].values(), b[i].values());
    if (a[i].value(kAge) >= 60) {
      EXPECT_NE(a[i].label(), b[i].label());
    } else {
      EXPECT_EQ(a[i].label(), b[i].label());
    }
  }
}

TEST(AgrawalGeneratorTest, WritesTableFile) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const std::string path = temp->NewPath("agrawal");
  AgrawalConfig config;
  config.function = 2;
  ASSERT_TRUE(GenerateAgrawalTable(config, 500, path).ok());
  auto back = ReadTable(path, MakeAgrawalSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 500u);
  EXPECT_EQ(*back, GenerateAgrawal(config, 500));
}

}  // namespace
}  // namespace boat
