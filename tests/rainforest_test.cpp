// Unit tests for the RainForest algorithms beyond the cross-algorithm
// equivalence suite: stats accounting, buffer-pressure behaviour, disk
// sources, and the in-memory switch.

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "rainforest/rainforest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

std::vector<Tuple> F1Data(int n, uint64_t seed = 71, double noise = 0.0) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = seed;
  config.noise = noise;
  return GenerateAgrawal(config, n);
}

std::vector<Tuple> F7Data(int n, uint64_t seed = 73) {
  AgrawalConfig config;
  config.function = 7;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

TEST(RainForestTest, HybridMakesOneScanPerLevelWhenBufferLarge) {
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> data = F1Data(4000);
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  options.avc_buffer_entries = 1 << 24;  // everything fits
  options.inmem_threshold = 0;           // never switch
  VectorSource source(schema, data);
  RainForestStats stats;
  auto tree = BuildTreeRFHybrid(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  // The last level iteration finds only leaves and scans nothing.
  EXPECT_EQ(stats.scans + 1, stats.levels);
  EXPECT_EQ(stats.nodes_deferred, 0u);
  EXPECT_EQ(stats.partition_tuples, 0u);
  // One scan per level of the final tree.
  EXPECT_GE(stats.scans, static_cast<uint64_t>(tree->depth()));
}

TEST(RainForestTest, HybridDefersUnderBufferPressure) {
  const Schema schema = MakeAgrawalSchema();
  // F7 grows a bushy tree: several active nodes per level compete for the
  // AVC buffer.
  std::vector<Tuple> data = F7Data(6000);
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  options.avc_buffer_entries = 5000;  // roughly one node's AVC-group
  options.inmem_threshold = 0;
  VectorSource source(schema, data);
  RainForestStats stats;
  auto tree = BuildTreeRFHybrid(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(stats.nodes_deferred, 0u);
  EXPECT_GT(stats.partition_tuples, 0u);
}

TEST(RainForestTest, VerticalMakesMoreScansThanHybrid) {
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> data = F1Data(4000);
  auto selector = MakeGiniSelector();

  RainForestStats hybrid_stats;
  {
    RainForestOptions options;
    options.avc_buffer_entries = 1 << 24;
    VectorSource source(schema, data);
    ASSERT_TRUE(
        BuildTreeRFHybrid(&source, *selector, options, &hybrid_stats).ok());
  }
  RainForestStats vertical_stats;
  {
    RainForestOptions options;
    options.avc_buffer_entries = 3000;  // forces several attribute groups
    VectorSource source(schema, data);
    ASSERT_TRUE(
        BuildTreeRFVertical(&source, *selector, options, &vertical_stats)
            .ok());
  }
  EXPECT_GT(vertical_stats.scans, hybrid_stats.scans);
}

TEST(RainForestTest, InMemorySwitchCountsAndMatchesReference) {
  const Schema schema = MakeAgrawalSchema();
  // Noise keeps families impure so growth continues past the threshold.
  std::vector<Tuple> data = F1Data(5000, 71, /*noise=*/0.1);
  auto selector = MakeGiniSelector();
  DecisionTree reference = BuildTreeInMemory(schema, data, *selector);

  RainForestOptions options;
  options.avc_buffer_entries = 1 << 24;
  options.inmem_threshold = 1000;
  VectorSource source(schema, data);
  RainForestStats stats;
  auto tree = BuildTreeRFHybrid(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(stats.inmem_switches, 0u);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(RainForestTest, WorksOverDiskTables) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const std::string path = temp->NewPath("rf-db");
  AgrawalConfig config;
  config.function = 6;
  config.seed = 72;
  ASSERT_TRUE(GenerateAgrawalTable(config, 3000, path).ok());
  const Schema schema = MakeAgrawalSchema();

  auto source = TableScanSource::Open(path, schema);
  ASSERT_TRUE(source.ok());
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  options.avc_buffer_entries = 20000;
  options.inmem_threshold = 500;
  auto tree = BuildTreeRFVertical(source->get(), *selector, options);
  ASSERT_TRUE(tree.ok());

  DecisionTree reference =
      BuildTreeInMemory(schema, GenerateAgrawal(config, 3000), *selector);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(RainForestTest, EmptyDatabaseYieldsLeaf) {
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  for (auto* build : {&BuildTreeRFHybrid, &BuildTreeRFVertical}) {
    VectorSource source(schema, {});
    auto tree = (*build)(&source, *selector, options, nullptr);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->num_nodes(), 1u);
  }
}

TEST(RainForestTest, StopFamilySizeRespected) {
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> data = F1Data(6000);
  auto selector = MakeGiniSelector();
  RainForestOptions options;
  options.limits.stop_family_size = 1500;
  options.avc_buffer_entries = 1 << 24;
  VectorSource source(schema, data);
  auto tree = BuildTreeRFHybrid(&source, *selector, options);
  ASSERT_TRUE(tree.ok());
  std::function<void(const TreeNode&)> visit = [&](const TreeNode& n) {
    if (n.is_leaf()) return;
    EXPECT_GT(n.family_size(), 1500);
    visit(*n.left);
    visit(*n.right);
  };
  visit(tree->root());
}

}  // namespace
}  // namespace boat
