// Edge-case tests across modules: QUEST statistic boundaries, spillable
// store compaction cycles, split-ordering branches, subtree serialization,
// and degenerate pruning inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "split/quest.h"
#include "storage/tuple_store.h"
#include "tree/pruning.h"
#include "tree/serialize.h"

namespace boat {
namespace {

// ----------------------------------------------------------- QUEST statistics

TEST(QuestEdgeTest, NumericScoreNeedsTwoPopulatedClasses) {
  const int64_t count[2] = {10, 0};
  const int64_t sum[2] = {10 * QuantizeValue(5.0), 0};
  const __int128 sum_sq[2] = {
      static_cast<__int128>(10) * QuantizeValue(5.0) * QuantizeValue(5.0), 0};
  EXPECT_DOUBLE_EQ(QuestSelector::NumericScore(count, sum, sum_sq, 2), 0.0);
}

TEST(QuestEdgeTest, NumericScoreNeedsThreeTuples) {
  const int64_t count[2] = {1, 1};
  const int64_t sum[2] = {QuantizeValue(1.0), QuantizeValue(2.0)};
  const __int128 sum_sq[2] = {
      static_cast<__int128>(QuantizeValue(1.0)) * QuantizeValue(1.0),
      static_cast<__int128>(QuantizeValue(2.0)) * QuantizeValue(2.0)};
  EXPECT_DOUBLE_EQ(QuestSelector::NumericScore(count, sum, sum_sq, 2), 0.0);
}

TEST(QuestEdgeTest, IdenticalPointMassesScoreZero) {
  // Both classes sit at the same value: no between-group variance.
  const int64_t q = QuantizeValue(7.0);
  const int64_t count[2] = {5, 5};
  const int64_t sum[2] = {5 * q, 5 * q};
  const __int128 sum_sq[2] = {static_cast<__int128>(5) * q * q,
                              static_cast<__int128>(5) * q * q};
  EXPECT_DOUBLE_EQ(QuestSelector::NumericScore(count, sum, sum_sq, 2), 0.0);
}

TEST(QuestEdgeTest, CategoricalScoreZeroWithOneCategory) {
  CategoricalAvc avc(3, 2);
  avc.Add(1, 0, 5);
  avc.Add(1, 1, 5);
  EXPECT_DOUBLE_EQ(QuestSelector::CategoricalScore(avc), 0.0);
}

TEST(QuestEdgeTest, ThresholdUndefinedWithOneClass) {
  const int64_t count[2] = {10, 0};
  const int64_t sum[2] = {10 * QuantizeValue(3.0), 0};
  EXPECT_FALSE(QuestSelector::Threshold(count, sum, 2).has_value());
}

TEST(QuestEdgeTest, QuantizationIsMonotone) {
  Rng rng(9);
  double prev = -1e9;
  int64_t prev_q = QuantizeValue(prev);
  for (int i = 0; i < 1000; ++i) {
    const double v = prev + rng.UniformDouble(0.0, 100.0);
    const int64_t q = QuantizeValue(v);
    EXPECT_GE(q, prev_q);
    prev = v;
    prev_q = q;
  }
}

// --------------------------------------------------------- store compaction

TEST(StoreEdgeTest, RepeatedRemoveCyclesTriggerCompaction) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  SpillableTupleStore store(schema, &*temp, "s", 8);
  // Insert and remove in waves; sizes must stay exact throughout.
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          store.Append(Tuple({double(wave * 100 + i)}, i % 2)).ok());
    }
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(
          store.RemoveOne(Tuple({double(wave * 100 + i)}, i % 2)).ok());
    }
    EXPECT_EQ(store.size(), static_cast<size_t>((wave + 1) * 10));
  }
  auto all = store.ToVector();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 50u);
  // Every survivor has index 30..39 within its wave.
  for (const Tuple& t : *all) {
    const int within = static_cast<int>(t.value(0)) % 100;
    EXPECT_GE(within, 30);
  }
}

TEST(StoreEdgeTest, SourceSeesConsistentSnapshot) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  SpillableTupleStore store(schema, &*temp, "s", 4);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Append(Tuple({double(i)}, 0)).ok());
  }
  ASSERT_TRUE(store.RemoveOne(Tuple({5.0}, 0)).ok());
  ASSERT_TRUE(store.RemoveOne(Tuple({15.0}, 0)).ok());
  auto source = store.MakeSource();
  std::set<double> seen;
  Tuple t;
  while (source->Next(&t)) seen.insert(t.value(0));
  EXPECT_EQ(seen.size(), 18u);
  EXPECT_EQ(seen.count(5.0), 0u);
  EXPECT_EQ(seen.count(15.0), 0u);
}

// ------------------------------------------------------------ split ordering

TEST(SplitOrderingEdgeTest, NumericalPreferredOverCategoricalOnFullTie) {
  // Same impurity, same attribute index is impossible for different types,
  // but BetterSplit must still be a strict weak ordering when comparing a
  // numerical and a categorical candidate with equal impurity on different
  // attributes.
  Split numeric = Split::Numerical(1, 5.0, 0.25);
  Split categorical = Split::Categorical(2, {0, 1}, 0.25);
  EXPECT_TRUE(BetterSplit(numeric, categorical));   // lower attribute wins
  EXPECT_FALSE(BetterSplit(categorical, numeric));
  // Antisymmetry on equal candidates.
  EXPECT_FALSE(BetterSplit(numeric, numeric));
}

// ----------------------------------------------------- subtree serialization

TEST(SubtreeSerializationTest, RoundTripViaPublicHelpers) {
  Schema schema({Attribute::Numerical("x"), Attribute::Categorical("c", 4)},
                3);
  auto subtree = TreeNode::Internal(
      Split::Categorical(1, {0, 3}, 0.1), {4, 4, 2},
      TreeNode::Internal(Split::Numerical(0, 2.5, 0.05), {4, 0, 1},
                         TreeNode::Leaf({4, 0, 0}), TreeNode::Leaf({0, 0, 1})),
      TreeNode::Leaf({0, 4, 1}));
  const std::string doc = SerializeSubtree(*subtree);

  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(doc);
  while (std::getline(in, line)) lines.push_back(line);
  size_t cursor = 0;
  auto back = DeserializeSubtree(lines, &cursor, schema);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(cursor, lines.size());
  EXPECT_TRUE(SubtreesEqual(*subtree, **back));
}

TEST(SubtreeSerializationTest, TruncatedDocumentFails) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<std::string> lines = {"N 0 n 0x1p+1 0x1p-2 2 3 3",
                                    "L 2 3 0"};  // right child missing
  size_t cursor = 0;
  EXPECT_FALSE(DeserializeSubtree(lines, &cursor, schema).ok());
}

// ---------------------------------------------------------- pruning edges

TEST(PruningEdgeTest, StumpAndLeafInputs) {
  Schema schema({Attribute::Numerical("x")}, 2);
  DecisionTree leaf(schema, TreeNode::Leaf({3, 1}));
  EXPECT_EQ(PruneMdl(leaf).num_nodes(), 1u);
  EXPECT_EQ(PruneCostComplexity(leaf, 1.0).num_nodes(), 1u);
  EXPECT_TRUE(CostComplexityAlphas(leaf).empty());
  EXPECT_EQ(PruneReducedError(leaf, {}).num_nodes(), 1u);

  auto stump_root = TreeNode::Internal(Split::Numerical(0, 5.0, 0.0), {5, 5},
                                       TreeNode::Leaf({5, 0}),
                                       TreeNode::Leaf({0, 5}));
  DecisionTree stump(schema, std::move(stump_root));
  // The stump is perfect: only an absurd penalty collapses it.
  EXPECT_EQ(PruneMdl(stump, 0.5).num_nodes(), 3u);
  EXPECT_EQ(PruneMdl(stump, 100.0).num_nodes(), 1u);
  EXPECT_EQ(CostComplexityAlphas(stump).size(), 1u);
}

TEST(PruningEdgeTest, ReducedErrorWithEmptyValidationCollapses) {
  // No validation evidence: leaf (0 errors) ties subtree (0 errors), so
  // everything collapses — the conservative choice.
  Schema schema({Attribute::Numerical("x")}, 2);
  auto root = TreeNode::Internal(Split::Numerical(0, 5.0, 0.0), {5, 5},
                                 TreeNode::Leaf({5, 0}),
                                 TreeNode::Leaf({0, 5}));
  DecisionTree tree(schema, std::move(root));
  EXPECT_EQ(PruneReducedError(tree, {}).num_nodes(), 1u);
}

}  // namespace
}  // namespace boat
