// Determinism of the multi-threaded growth phase: BOAT built with any
// num_threads must produce the byte-identical serialized tree (and identical
// I/O work) as the serial build, on top of the usual guarantee of equality
// with the in-memory reference tree. This is the test CI also runs under
// ThreadSanitizer (-DBOAT_SANITIZE=thread).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "boat/builder.h"
#include "common/io_stats.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"

namespace boat {
namespace {

std::unique_ptr<VectorSource> SourceOf(const Schema& schema,
                                       std::vector<Tuple> tuples) {
  return std::make_unique<VectorSource>(schema, std::move(tuples));
}

BoatOptions SmallBoatOptions() {
  BoatOptions options;
  options.sample_size = 800;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 400;
  options.inmem_threshold = 300;
  options.store_memory_budget = 512;  // force spilling to temp segments
  options.max_buckets_per_attr = 64;
  options.seed = 7;
  return options;
}

struct ParallelCase {
  int function;
  double noise;
  const char* selector;  // "gini", "entropy" or "quest"
};

void PrintTo(const ParallelCase& c, std::ostream* os) {
  *os << "F" << c.function << "_noise" << c.noise << "_" << c.selector;
}

std::unique_ptr<SplitSelector> MakeSelector(const std::string& name) {
  if (name == "quest") return std::make_unique<QuestSelector>();
  return std::make_unique<ImpuritySplitSelector>(MakeImpurity(name));
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<ParallelCase> {
};

TEST_P(ParallelEquivalenceTest, EveryThreadCountYieldsTheIdenticalTree) {
  const ParallelCase& param = GetParam();
  AgrawalConfig config;
  config.function = param.function;
  config.noise = param.noise;
  config.seed = 20260000 + param.function;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> data = GenerateAgrawal(config, 24000);

  std::unique_ptr<SplitSelector> selector = MakeSelector(param.selector);
  GrowthLimits limits;
  limits.max_depth = 24;
  limits.stop_family_size = 400;

  const DecisionTree reference =
      BuildTreeInMemory(schema, data, *selector, limits);
  ASSERT_GT(reference.num_nodes(), 1u) << "vacuous case";

  std::string serial_bytes;
  IoStats serial_io;
  for (const int threads : {1, 2, 8}) {
    BoatOptions options = SmallBoatOptions();
    options.limits = limits;
    options.num_threads = threads;
    auto source = SourceOf(schema, data);
    ResetIoStats();
    auto tree = BuildTreeBoat(source.get(), *selector, options);
    const IoStats io = GetIoStats();
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    EXPECT_TRUE(tree->StructurallyEqual(reference)) << "threads=" << threads;

    const std::string bytes = SerializeTree(*tree);
    if (threads == 1) {
      serial_bytes = bytes;
      serial_io = io;
      continue;
    }
    // Bit-identical serialized tree...
    EXPECT_EQ(bytes, serial_bytes) << "threads=" << threads;
    // ...and exactly the serial scan's I/O: workers never touch storage,
    // and the in-order merge replays every store append identically.
    EXPECT_EQ(io.tuples_read, serial_io.tuples_read) << "threads=" << threads;
    EXPECT_EQ(io.tuples_written, serial_io.tuples_written)
        << "threads=" << threads;
    EXPECT_EQ(io.bytes_read, serial_io.bytes_read) << "threads=" << threads;
    EXPECT_EQ(io.bytes_written, serial_io.bytes_written)
        << "threads=" << threads;
    EXPECT_EQ(io.scans_started, serial_io.scans_started)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParallelEquivalenceTest,
    ::testing::Values(ParallelCase{1, 0.0, "gini"},    // numerical splits
                      ParallelCase{7, 0.05, "gini"},   // categorical + noise
                      ParallelCase{6, 0.0, "entropy"},
                      ParallelCase{1, 0.0, "quest"},   // moment statistics
                      ParallelCase{7, 0.0, "quest"}));

TEST(ParallelEquivalenceTest, HardwareConcurrencyModeBuildsTheSameTree) {
  AgrawalConfig config;
  config.function = 2;
  config.seed = 99;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> data = GenerateAgrawal(config, 12000);
  auto selector = MakeGiniSelector();

  std::string bytes[2];
  for (const int threads : {1, 0}) {  // 0 = hardware concurrency
    BoatOptions options = SmallBoatOptions();
    options.num_threads = threads;
    auto source = SourceOf(schema, data);
    auto tree = BuildTreeBoat(source.get(), *selector, options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    bytes[threads == 1] = SerializeTree(*tree);
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(ParallelEquivalenceTest, ParallelBuildSupportsSerialUpdates) {
  // A model built by the parallel scan must be maintainable exactly like a
  // serially built one: insert chunks after the build and compare against a
  // from-scratch reference each time.
  AgrawalConfig config;
  config.function = 1;
  config.noise = 0.1;
  config.seed = 4242;
  const Schema schema = MakeAgrawalSchema();
  std::vector<Tuple> all = GenerateAgrawal(config, 14000);
  std::vector<Tuple> base(all.begin(), all.begin() + 10000);

  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 20;

  BoatOptions options = SmallBoatOptions();
  options.limits = limits;
  options.enable_updates = true;
  options.num_threads = 4;

  auto source = SourceOf(schema, base);
  auto classifier =
      BoatClassifier::Train(source.get(), selector.get(), options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();

  size_t cursor = 10000;
  while (cursor < all.size()) {
    const size_t end = std::min(all.size(), cursor + size_t{2000});
    std::vector<Tuple> chunk(all.begin() + cursor, all.begin() + end);
    cursor = end;
    ASSERT_TRUE((*classifier)->InsertChunk(chunk, nullptr).ok());

    std::vector<Tuple> so_far(all.begin(), all.begin() + cursor);
    const DecisionTree reference =
        BuildTreeInMemory(schema, so_far, *selector, limits);
    EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference))
        << "after inserting up to " << cursor;
  }
}

}  // namespace
}  // namespace boat
