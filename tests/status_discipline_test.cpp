// Tests for the correctness-tooling layer:
//  - BOAT_IGNORE_STATUS is the one sanctioned way to drop a Status.
//  - Hardened tree deserialization: depth/arity bombs and truncated or
//    garbage documents must return Corruption, never crash or allocate
//    absurd amounts (regression tests for the fuzz-harness findings).
//  - Error propagation on the persistence/load paths: corrupt or truncated
//    model files, unreadable S_n spill files, and full-disk-style write
//    failures must surface as failing Status.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "boat/persistence.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "datagen/agrawal.h"
#include "split/selector.h"
#include "storage/csv.h"
#include "storage/table_file.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/decision_tree.h"
#include "tree/serialize.h"

namespace boat {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- Status

TEST(StatusDiscipline, IgnoreStatusMacroCompilesAndDiscards) {
  auto fails = [] { return Status::IOError("deliberately dropped"); };
  BOAT_IGNORE_STATUS(fails());  // would be a -Werror build break without it
}

TEST(StatusDiscipline, IgnoreStatusWorksForResultToo) {
  auto fails = []() -> Result<int> { return Status::NotFound("nope"); };
  BOAT_IGNORE_STATUS(fails());
}

// ---------------------------------------------- hardened deserialization

Schema SmallSchema() {
  return Schema({Attribute::Numerical("a"), Attribute::Categorical("c", 4)},
                /*num_classes=*/2);
}

std::string DocHeader(const Schema& schema) {
  return StrPrintf("BOATTREE v1\nfingerprint %016llx\n",
                   static_cast<unsigned long long>(schema.Fingerprint()));
}

TEST(SerializeHardening, NestingDepthBombIsRejected) {
  const Schema schema = SmallSchema();
  std::string doc = DocHeader(schema);
  // 5000 nested internal nodes exceed kMaxParseDepth (512); before the
  // depth cap this overflowed the stack inside the recursive parser.
  for (int i = 0; i < 5000; ++i) doc += "N 0 n 0x1p+0 0x0p+0 2 1 1\n";
  auto result = DeserializeTree(doc, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializeHardening, ClassCountArityBombIsRejected) {
  const Schema schema = SmallSchema();
  // Claims 2^30 classes; before the arity cap this attempted an 8 GiB
  // vector allocation during parsing.
  const std::string doc = DocHeader(schema) + "L 1073741824 1 1\n";
  auto result = DeserializeTree(doc, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializeHardening, SubsetArityBombIsRejected) {
  const Schema schema = SmallSchema();
  const std::string doc =
      DocHeader(schema) + "N 1 c 1073741824 0 0x0p+0 2 1 1\n";
  auto result = DeserializeTree(doc, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializeHardening, TruncatedDocumentIsRejected) {
  const Schema schema = SmallSchema();
  // Internal node announced, children missing.
  const std::string doc = DocHeader(schema) + "N 0 n 0x1p+0 0x0p+0 2 1 1\n";
  auto result = DeserializeTree(doc, schema);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializeHardening, GarbageDocumentIsRejected) {
  const Schema schema = SmallSchema();
  auto result = DeserializeTree("\x7f\x45\x4c\x46 not a tree\n\n\x01\x02",
                                schema);
  ASSERT_FALSE(result.ok());
}

TEST(SerializeHardening, LoadTreeMissingFileIsNotFound) {
  auto result = LoadTree("/nonexistent/path/tree.boattree", SmallSchema());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------------- persistence/load paths

class PersistenceErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto temp = TempFileManager::Create();
    ASSERT_TRUE(temp.ok());
    temp_ = std::make_unique<TempFileManager>(std::move(temp).ValueOrDie());
  }

  // Trains a small update-capable classifier and saves it into `dir`.
  // Mirrors persistence_test.cpp's setup; enable_updates makes the saved
  // directory carry S_n store files (store-*.tbl) alongside the manifest.
  void SaveTrainedModel(const std::string& dir) {
    AgrawalConfig config;
    config.function = 6;
    config.noise = 0.05;
    config.seed = 100;
    const Schema schema = MakeAgrawalSchema();
    auto data = GenerateAgrawal(config, 3000);
    selector_ = MakeGiniSelector();

    BoatOptions options;
    options.sample_size = 600;
    options.bootstrap_count = 6;
    options.bootstrap_subsample = 200;
    options.inmem_threshold = 300;
    options.store_memory_budget = 256;
    options.enable_updates = true;
    options.seed = 11;

    VectorSource source(schema, data);
    auto classifier = BoatClassifier::Train(&source, selector_.get(), options);
    ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
    ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
  }

  std::unique_ptr<TempFileManager> temp_;
  std::unique_ptr<SplitSelector> selector_;
};

TEST_F(PersistenceErrorTest, LoadFromMissingDirectoryIsNotFound) {
  auto selector = MakeGiniSelector();
  auto loaded = LoadClassifier(temp_->NewPath("never-saved"), selector.get());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistenceErrorTest, TruncatedManifestFailsCleanly) {
  const std::string dir = temp_->NewPath("model");
  SaveTrainedModel(dir);

  const std::string manifest_path = dir + "/manifest.boatmodel";
  std::ifstream in(manifest_path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(contents.size(), 64u);
  std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
  out << contents.substr(0, contents.size() / 2);
  out.close();

  auto loaded = LoadClassifier(dir, selector_.get());
  ASSERT_FALSE(loaded.ok());  // must be a Status, not a crash
}

TEST_F(PersistenceErrorTest, GarbageManifestFailsCleanly) {
  const std::string dir = temp_->NewPath("model");
  SaveTrainedModel(dir);

  std::ofstream out(dir + "/manifest.boatmodel",
                    std::ios::binary | std::ios::trunc);
  out << "BOATMODEL v1\nselector gini\nschema -5 999999999\n\x01\x02\x03";
  out.close();

  auto loaded = LoadClassifier(dir, selector_.get());
  ASSERT_FALSE(loaded.ok());
}

TEST_F(PersistenceErrorTest, CorruptSpillStoreFailsCleanly) {
  const std::string dir = temp_->NewPath("model");
  SaveTrainedModel(dir);

  // Smash the header magic of every saved S_n store file; TableReader::Open
  // must reject them and the Status must propagate out of LoadClassifier.
  int corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("store-", 0) == 0) {
      std::ofstream out(entry.path(), std::ios::binary | std::ios::in);
      out.seekp(0);
      out.write("XXXXXXXX", 8);
      out.close();
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0) << "expected saved model to carry S_n store files";

  auto loaded = LoadClassifier(dir, selector_.get());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
      << loaded.status().ToString();
}

TEST_F(PersistenceErrorTest, TruncatedSpillStoreFailsCleanly) {
  const std::string dir = temp_->NewPath("model");
  SaveTrainedModel(dir);

  int truncated = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("store-", 0) == 0) {
      fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
      ++truncated;
    }
  }
  ASSERT_GT(truncated, 0);

  auto loaded = LoadClassifier(dir, selector_.get());
  ASSERT_FALSE(loaded.ok());
}

// ------------------------------------------------- full-disk write errors

TEST(FullDiskErrors, SaveTreeToFullDeviceIsIOError) {
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  const Schema schema = SmallSchema();
  DecisionTree tree(schema, TreeNode::Leaf({3, 4}));
  const Status st = SaveTree(tree, "/dev/full");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(FullDiskErrors, WriteCsvToFullDeviceIsIOError) {
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  const Schema schema = SmallSchema();
  const Status st = WriteCsv("/dev/full", schema, {});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(FullDiskErrors, WriteTableToFullDeviceIsIOError) {
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  const Schema schema = SmallSchema();
  // Header write already hits the device, so Create itself must fail; if it
  // ever becomes lazier, Finish must catch the flush failure instead.
  auto writer = TableWriter::Create("/dev/full", schema);
  if (writer.ok()) {
    const Status st = (*writer)->Finish();
    ASSERT_FALSE(st.ok());
  } else {
    EXPECT_EQ(writer.status().code(), StatusCode::kIOError);
  }
}

TEST_F(PersistenceErrorTest, SaveModelToUnwritableDirectoryIsIOError) {
  const std::string dir = temp_->NewPath("model");
  SaveTrainedModel(dir);
  auto loaded = LoadClassifier(dir, selector_.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // "/dev/null/model" is a path under a file: create_directories must fail
  // and SaveClassifier must surface it as IOError, not abort.
  const Status st = SaveClassifier(**loaded, "/dev/null/model");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace boat
