// Unit tests for BOAT's building blocks: discretizations, bucket counts,
// corner lower bounds, extreme trackers, bootstrap combination, the model
// and the dataset archive.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "boat/bootstrap_phase.h"
#include "boat/bounds.h"
#include "boat/builder.h"
#include "boat/model.h"
#include "datagen/agrawal.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

// ------------------------------------------------------------- Discretization

TEST(DiscretizationTest, BucketOfSemantics) {
  Discretization disc({5.0, 10.0});
  EXPECT_EQ(disc.num_buckets(), 3);
  EXPECT_EQ(disc.BucketOf(-100), 0);
  EXPECT_EQ(disc.BucketOf(5.0), 0);   // boundary is inclusive on the left
  EXPECT_EQ(disc.BucketOf(5.1), 1);
  EXPECT_EQ(disc.BucketOf(10.0), 1);
  EXPECT_EQ(disc.BucketOf(10.5), 2);
}

TEST(DiscretizationTest, AddBoundaryKeepsOrderAndDedupes) {
  Discretization disc({5.0, 10.0});
  disc.AddBoundary(7.5);
  disc.AddBoundary(5.0);  // duplicate: no-op
  EXPECT_EQ(disc.boundaries(), (std::vector<double>{5.0, 7.5, 10.0}));
  EXPECT_EQ(disc.BoundaryIndex(7.5), 1);
  EXPECT_EQ(disc.BoundaryIndex(8.0), -1);
}

TEST(BucketCountsTest, CountsAndStamps) {
  BucketCounts bc(Discretization({5.0, 10.0}), 2);
  bc.Add(1.0, 0);
  bc.Add(5.0, 1);
  bc.Add(7.0, 0);
  bc.Add(12.0, 1);
  EXPECT_EQ(bc.BucketTotal(0), 2);
  EXPECT_EQ(bc.BucketTotal(1), 1);
  EXPECT_EQ(bc.BucketTotal(2), 1);
  EXPECT_EQ(bc.StampAtUpperBoundary(0), (std::vector<int64_t>{1, 1}));
  EXPECT_EQ(bc.StampAtUpperBoundary(1), (std::vector<int64_t>{2, 1}));
  EXPECT_EQ(bc.Totals(), (std::vector<int64_t>{2, 2}));
}

TEST(BucketCountsTest, MinValueTracking) {
  BucketCounts bc(Discretization({5.0}), 2);
  bc.Add(3.0, 0);
  bc.Add(2.0, 1);
  bc.Add(2.0, 0);
  auto mins = bc.MinValueCounts(0);
  ASSERT_TRUE(mins.has_value());
  EXPECT_EQ(*mins, (std::vector<int64_t>{1, 1}));  // counts at value 2.0
}

TEST(BucketCountsTest, DeletingTrackedMinimumLosesIt) {
  BucketCounts bc(Discretization(std::vector<double>{}), 2);
  bc.Add(2.0, 0);
  bc.Add(3.0, 0);
  bc.Add(2.0, 0, -1);
  EXPECT_FALSE(bc.MinValueCounts(0).has_value());  // 3.0 remains but unknown
  // Emptying the bucket restores exactness.
  bc.Add(3.0, 0, -1);
  EXPECT_EQ(bc.BucketTotal(0), 0);
  bc.Add(7.0, 1);
  auto mins = bc.MinValueCounts(0);
  ASSERT_TRUE(mins.has_value());
  EXPECT_EQ(*mins, (std::vector<int64_t>{0, 1}));
}

TEST(AdaptiveDiscretizationTest, BoundariesComeFromSampleValues) {
  NumericAvc avc(2);
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = static_cast<double>(rng.UniformInt(0, 99));
    avc.Add(v, v < 50 ? 0 : 1);
  }
  avc.Finalize();
  GiniImpurity gini;
  Discretization disc = BuildAdaptiveDiscretization(avc, gini, 16);
  EXPECT_GT(disc.num_buckets(), 1);
  for (const double b : disc.boundaries()) {
    EXPECT_EQ(b, std::floor(b));  // a value from the (integer) sample
    EXPECT_GE(b, 0);
    EXPECT_LE(b, 99);
  }
}

TEST(AdaptiveDiscretizationTest, RefinesNearTheMinimum) {
  // Class flips at 50: impurity dips there; buckets should be denser near
  // the optimum than far from it.
  NumericAvc avc(2);
  for (int v = 0; v < 200; ++v) {
    for (int rep = 0; rep < 5; ++rep) avc.Add(v, v < 100 ? 0 : 1);
  }
  avc.Finalize();
  GiniImpurity gini;
  Discretization disc = BuildAdaptiveDiscretization(avc, gini, 10);
  int near = 0;
  int far = 0;
  for (const double b : disc.boundaries()) {
    if (std::abs(b - 100.0) <= 25) {
      ++near;
    } else {
      ++far;
    }
  }
  EXPECT_GT(near, 0);
  EXPECT_GE(near, far / 4);  // the dangerous region is not under-resolved
}

// ----------------------------------------------------------------- Bounds

TEST(CornerLowerBoundTest, DegenerateBoxIsExact) {
  GiniImpurity gini;
  const std::vector<int64_t> stamp = {3, 1};
  const std::vector<int64_t> totals = {5, 5};
  const int64_t left[2] = {3, 1};
  const int64_t right[2] = {2, 4};
  EXPECT_DOUBLE_EQ(CornerLowerBound(gini, stamp, stamp, totals, 10),
                   gini.Eval(left, right, 2, 10));
}

TEST(CornerLowerBoundTest, ManyClassesFallBackToConservativeBound) {
  // Past kMaxCornerBoundClasses the 2^k corner enumeration is skipped and
  // -infinity (a valid but powerless lower bound) is returned, instead of
  // silently burning 2^k impurity evaluations per call.
  GiniImpurity gini;
  const int k = kMaxCornerBoundClasses + 1;
  std::vector<int64_t> totals(k, 10), lo(k, 2), hi(k, 8);
  const double bound =
      CornerLowerBound(gini, lo, hi, totals, 10 * static_cast<int64_t>(k));
  EXPECT_EQ(bound, -std::numeric_limits<double>::infinity());

  // At the cap the enumeration still runs and returns a finite bound.
  const int k_ok = kMaxCornerBoundClasses;
  std::vector<int64_t> totals2(k_ok, 10), lo2(k_ok, 2), hi2(k_ok, 8);
  const double bound2 = CornerLowerBound(gini, lo2, hi2, totals2,
                                         10 * static_cast<int64_t>(k_ok));
  EXPECT_TRUE(std::isfinite(bound2));
  EXPECT_GE(bound2, 0.0);
}

TEST(CornerLowerBoundTest, BoundsAllInteriorStampPoints) {
  GiniImpurity gini;
  EntropyImpurity entropy;
  Rng rng(23);
  for (int rep = 0; rep < 200; ++rep) {
    const int k = 2 + static_cast<int>(rng.UniformInt(0, 1));
    std::vector<int64_t> totals(k), lo(k), hi(k);
    int64_t total = 0;
    for (int c = 0; c < k; ++c) {
      totals[c] = rng.UniformInt(5, 40);
      total += totals[c];
      lo[c] = rng.UniformInt(0, totals[c] / 2);
      hi[c] = rng.UniformInt(lo[c], totals[c]);
    }
    for (const ImpurityFunction* imp :
         {static_cast<const ImpurityFunction*>(&gini),
          static_cast<const ImpurityFunction*>(&entropy)}) {
      const double bound = CornerLowerBound(*imp, lo, hi, totals, total);
      // Sample interior points of the box; all must be >= the bound.
      for (int probe = 0; probe < 20; ++probe) {
        std::vector<int64_t> s(k), r(k);
        for (int c = 0; c < k; ++c) {
          s[c] = rng.UniformInt(lo[c], hi[c]);
          r[c] = totals[c] - s[c];
        }
        const double v = imp->Eval(s.data(), r.data(), k, total);
        EXPECT_GE(v, bound - 1e-12);
      }
    }
  }
}

// ------------------------------------------------------------ ExtremeTracker

TEST(ExtremeTrackerTest, TracksMaxBelowBound) {
  ExtremeTracker tracker(10.0);
  tracker.Insert(5.0);
  tracker.Insert(12.0);  // above bound: ignored
  tracker.Insert(8.0);
  EXPECT_TRUE(tracker.known());
  EXPECT_EQ(tracker.value(), 8.0);
  EXPECT_EQ(tracker.qualifying(), 2);
}

TEST(ExtremeTrackerTest, EmptyWhenNothingQualifies) {
  ExtremeTracker tracker(10.0);
  tracker.Insert(20.0);
  EXPECT_TRUE(tracker.empty());
  EXPECT_TRUE(tracker.known());
}

TEST(ExtremeTrackerTest, RemovalOfNonExtremeKeepsValue) {
  ExtremeTracker tracker(100.0);
  tracker.Insert(5.0);
  tracker.Insert(8.0);
  tracker.Remove(5.0);
  EXPECT_TRUE(tracker.known());
  EXPECT_EQ(tracker.value(), 8.0);
}

TEST(ExtremeTrackerTest, RemovingTheExtremeLosesIt) {
  ExtremeTracker tracker(100.0);
  tracker.Insert(5.0);
  tracker.Insert(8.0);
  tracker.Remove(8.0);
  EXPECT_FALSE(tracker.known());  // 5.0 exists but is untracked
  tracker.Remove(5.0);
  EXPECT_TRUE(tracker.known());  // empty again: exact
  EXPECT_TRUE(tracker.empty());
}

TEST(ExtremeTrackerTest, MultiplicityProtectsAgainstLoss) {
  ExtremeTracker tracker(100.0);
  tracker.Insert(8.0);
  tracker.Insert(8.0);
  tracker.Remove(8.0);
  EXPECT_TRUE(tracker.known());
  EXPECT_EQ(tracker.value(), 8.0);
}

// ------------------------------------------------------- Bootstrap combining

DecisionTree TreeWithRootSplit(const Schema& schema, Split split) {
  auto root = TreeNode::Internal(std::move(split), {5, 5},
                                 TreeNode::Leaf({5, 0}),
                                 TreeNode::Leaf({0, 5}));
  return DecisionTree(schema, std::move(root));
}

TEST(CombineBootstrapTest, AgreementYieldsInterval) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<DecisionTree> trees;
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(0, 4.0, 0.1)));
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(0, 6.0, 0.1)));
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(0, 5.0, 0.1)));
  uint64_t kills = 0;
  auto coarse = CombineBootstrapTrees(trees, &kills);
  ASSERT_FALSE(coarse->is_frontier());
  EXPECT_EQ(coarse->criterion->attribute, 0);
  EXPECT_EQ(coarse->criterion->interval_lo, 4.0);
  EXPECT_EQ(coarse->criterion->interval_hi, 6.0);
  EXPECT_EQ(kills, 0u);
  // Children are leaves in all trees: frontier without kills.
  EXPECT_TRUE(coarse->left->is_frontier());
}

TEST(CombineBootstrapTest, AttributeDisagreementKills) {
  Schema schema({Attribute::Numerical("x"), Attribute::Numerical("y")}, 2);
  std::vector<DecisionTree> trees;
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(0, 4.0, 0.1)));
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(1, 4.0, 0.1)));
  uint64_t kills = 0;
  auto coarse = CombineBootstrapTrees(trees, &kills);
  EXPECT_TRUE(coarse->is_frontier());
  EXPECT_EQ(kills, 1u);
}

TEST(CombineBootstrapTest, CategoricalSubsetMismatchKills) {
  Schema schema({Attribute::Categorical("c", 4)}, 2);
  std::vector<DecisionTree> trees;
  trees.push_back(
      TreeWithRootSplit(schema, Split::Categorical(0, {0, 1}, 0.1)));
  trees.push_back(
      TreeWithRootSplit(schema, Split::Categorical(0, {0, 2}, 0.1)));
  uint64_t kills = 0;
  auto coarse = CombineBootstrapTrees(trees, &kills);
  EXPECT_TRUE(coarse->is_frontier());
  EXPECT_EQ(kills, 1u);
}

TEST(CombineBootstrapTest, CategoricalAgreementKeepsSubset) {
  Schema schema({Attribute::Categorical("c", 4)}, 2);
  std::vector<DecisionTree> trees;
  trees.push_back(
      TreeWithRootSplit(schema, Split::Categorical(0, {0, 1}, 0.1)));
  trees.push_back(
      TreeWithRootSplit(schema, Split::Categorical(0, {0, 1}, 0.2)));
  uint64_t kills = 0;
  auto coarse = CombineBootstrapTrees(trees, &kills);
  ASSERT_FALSE(coarse->is_frontier());
  EXPECT_FALSE(coarse->criterion->is_numerical);
  EXPECT_EQ(coarse->criterion->subset, (std::vector<int32_t>{0, 1}));
}

TEST(CombineBootstrapTest, MixedLeafInternalStops) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<DecisionTree> trees;
  trees.push_back(TreeWithRootSplit(schema, Split::Numerical(0, 4.0, 0.1)));
  trees.push_back(DecisionTree(schema, TreeNode::Leaf({10, 0})));
  uint64_t kills = 0;
  auto coarse = CombineBootstrapTrees(trees, &kills);
  EXPECT_TRUE(coarse->is_frontier());
  EXPECT_EQ(kills, 1u);
}

// -------------------------------------------------------------- SamplingPhase

TEST(SamplingPhaseTest, ProducesCoarseTreeOnSeparableData) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 31;
  AgrawalGenerator gen(config, 20000);
  auto selector = MakeGiniSelector();
  SamplingPhaseOptions opts;
  opts.sample_size = 2000;
  opts.bootstrap_count = 10;
  opts.bootstrap_subsample = 1000;
  opts.frontier_threshold = 1000;
  Rng rng(3);
  auto phase = RunSamplingPhase(&gen, *selector, opts, &rng);
  ASSERT_TRUE(phase.ok());
  EXPECT_EQ(phase->db_size, 20000u);
  EXPECT_EQ(phase->sample.size(), 2000u);
  // F1 is dominated by the age attribute: bootstrap trees agree at the root.
  ASSERT_FALSE(phase->coarse_root->is_frontier());
  EXPECT_EQ(phase->coarse_root->criterion->attribute, kAge);
  EXPECT_TRUE(phase->coarse_root->criterion->is_numerical);
  EXPECT_LE(phase->coarse_root->criterion->interval_lo,
            phase->coarse_root->criterion->interval_hi);
  // Discretizations exist for numerical attributes at internal nodes, and
  // the interval endpoints are forced boundaries of the split attribute.
  const auto& discs = phase->coarse_root->discretizations;
  ASSERT_EQ(static_cast<int>(discs.size()), 9);
  EXPECT_GE(
      discs[kAge].BoundaryIndex(phase->coarse_root->criterion->interval_lo),
      0);
  EXPECT_GE(
      discs[kAge].BoundaryIndex(phase->coarse_root->criterion->interval_hi),
      0);
}

TEST(SamplingPhaseTest, EmptyDatabaseYieldsFrontierRoot) {
  Schema schema({Attribute::Numerical("x")}, 2);
  VectorSource source(schema, {});
  auto selector = MakeGiniSelector();
  SamplingPhaseOptions opts;
  Rng rng(1);
  auto phase = RunSamplingPhase(&source, *selector, opts, &rng);
  ASSERT_TRUE(phase.ok());
  EXPECT_EQ(phase->db_size, 0u);
  EXPECT_TRUE(phase->coarse_root->is_frontier());
}

// ---------------------------------------------------------------- ModelNode

TEST(ModelTest, ExtractTreeFromFrontier) {
  ModelNode node;
  node.kind = ModelNode::Kind::kFrontier;
  node.subtree = TreeNode::Leaf({3, 7});
  auto tree = ExtractTree(node);
  EXPECT_TRUE(tree->is_leaf());
  EXPECT_EQ(tree->MajorityLabel(), 1);
}

TEST(ModelTest, ExtractTreeFromUnsplitInternal) {
  // An internal node without a final split (e.g. freshly leafized by the
  // stop rules) extracts as a leaf over its class totals.
  ModelNode node;
  node.kind = ModelNode::Kind::kInternal;
  node.class_totals = {5, 2};
  auto tree = ExtractTree(node);
  EXPECT_TRUE(tree->is_leaf());
  EXPECT_EQ(tree->MajorityLabel(), 0);
}

// ------------------------------------------------------------ DatasetArchive

TEST(DatasetArchiveTest, ScanStreamsLiveTuples) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  DatasetArchive archive(schema, &*temp);

  std::vector<Tuple> chunk1 = {Tuple({1.0}, 0), Tuple({2.0}, 1)};
  std::vector<Tuple> chunk2 = {Tuple({3.0}, 0)};
  ASSERT_TRUE(archive.AddChunk(chunk1).ok());
  ASSERT_TRUE(archive.AddChunk(chunk2).ok());
  EXPECT_EQ(archive.live_tuples(), 3);

  int64_t n = 0;
  ASSERT_TRUE(archive.Scan([&n](const Tuple&) { ++n; }).ok());
  EXPECT_EQ(n, 3);
}

TEST(DatasetArchiveTest, TombstonesCancelEqualTuples) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  DatasetArchive archive(schema, &*temp);

  // Two equal tuples inserted; one deleted: exactly one survives.
  std::vector<Tuple> chunk = {Tuple({1.0}, 0), Tuple({1.0}, 0),
                              Tuple({2.0}, 1)};
  ASSERT_TRUE(archive.AddChunk(chunk).ok());
  ASSERT_TRUE(archive.RemoveChunk({Tuple({1.0}, 0)}).ok());
  EXPECT_EQ(archive.live_tuples(), 2);

  int64_t ones = 0;
  int64_t twos = 0;
  ASSERT_TRUE(archive
                  .Scan([&](const Tuple& t) {
                    if (t.value(0) == 1.0) ++ones;
                    if (t.value(0) == 2.0) ++twos;
                  })
                  .ok());
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(twos, 1);
}

// ----------------------------------------------------------- BoatStats/merge

TEST(BoatStatsTest, MergeAccumulatesCounters) {
  BoatStats a;
  a.cleanup_scans = 1;
  a.failed_checks = 2;
  BoatStats b;
  b.cleanup_scans = 3;
  b.frontier_inmem = 4;
  a.MergeFrom(b);
  EXPECT_EQ(a.cleanup_scans, 4u);
  EXPECT_EQ(a.failed_checks, 2u);
  EXPECT_EQ(a.frontier_inmem, 4u);
}

}  // namespace
}  // namespace boat
