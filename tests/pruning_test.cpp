// Unit tests for tree pruning (MDL, cost-complexity, reduced-error) and the
// evaluation utilities (confusion matrix, holdout, cross-validation).

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "tree/evaluation.h"
#include "tree/inmem_builder.h"
#include "tree/pruning.h"

namespace boat {
namespace {

Schema XySchema() {
  return Schema({Attribute::Numerical("x"), Attribute::Numerical("y")}, 2);
}

// Data whose true concept is x <= 50, plus label noise: an unpruned tree
// overfits the noise; pruning should recover the single split.
std::vector<Tuple> NoisyThresholdData(int n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.UniformInt(0, 100));
    const double y = static_cast<double>(rng.UniformInt(0, 100));
    int32_t label = x <= 50 ? 0 : 1;
    if (rng.Bernoulli(noise)) label = 1 - label;
    out.push_back(Tuple({x, y}, label));
  }
  return out;
}

DecisionTree OverfitTree(const std::vector<Tuple>& train) {
  auto selector = MakeGiniSelector();
  return BuildTreeInMemory(XySchema(), train, *selector);
}

TEST(MdlPruningTest, ShrinksOverfitTreeAndKeepsSignal) {
  const auto train = NoisyThresholdData(2000, 0.15, 1);
  DecisionTree full = OverfitTree(train);
  ASSERT_GT(full.num_nodes(), 20u);  // noise made it overfit

  DecisionTree pruned = PruneMdl(full);
  EXPECT_LT(pruned.num_nodes(), full.num_nodes());
  // The true concept must survive: accuracy on clean data stays high.
  const auto clean = NoisyThresholdData(2000, 0.0, 2);
  EXPECT_LT(pruned.MisclassificationRate(clean), 0.05);
}

TEST(MdlPruningTest, HugePenaltyCollapsesToSingleLeaf) {
  const auto train = NoisyThresholdData(1000, 0.1, 3);
  DecisionTree full = OverfitTree(train);
  DecisionTree stump = PruneMdl(full, /*penalty=*/1e9);
  EXPECT_EQ(stump.num_nodes(), 1u);
}

TEST(MdlPruningTest, ZeroishPenaltyKeepsPerfectSubtrees) {
  // Perfectly separable data: every split reduces errors to zero, so a tiny
  // penalty still prunes nothing essential but the tree stays correct.
  const auto train = NoisyThresholdData(500, 0.0, 4);
  DecisionTree full = OverfitTree(train);
  DecisionTree pruned = PruneMdl(full, 0.25);
  EXPECT_DOUBLE_EQ(pruned.MisclassificationRate(train), 0.0);
}

TEST(CostComplexityTest, AlphaZeroRemovesOnlyUselessSplits) {
  const auto train = NoisyThresholdData(1500, 0.1, 5);
  DecisionTree full = OverfitTree(train);
  DecisionTree pruned = PruneCostComplexity(full, 0.0);
  // Resubstitution error must be unchanged at alpha = 0.
  EXPECT_DOUBLE_EQ(pruned.MisclassificationRate(train),
                   full.MisclassificationRate(train));
  EXPECT_LE(pruned.num_nodes(), full.num_nodes());
}

TEST(CostComplexityTest, MonotonicallySmallerTrees) {
  const auto train = NoisyThresholdData(1500, 0.15, 6);
  DecisionTree full = OverfitTree(train);
  size_t last_size = full.num_nodes() + 1;
  for (const double alpha : {0.0, 1.0, 5.0, 20.0, 100.0, 1e6}) {
    DecisionTree pruned = PruneCostComplexity(full, alpha);
    EXPECT_LE(pruned.num_nodes(), last_size);
    last_size = pruned.num_nodes();
  }
  EXPECT_EQ(PruneCostComplexity(full, 1e9).num_nodes(), 1u);
}

TEST(CostComplexityTest, AlphasAreSortedAndDistinct) {
  const auto train = NoisyThresholdData(1500, 0.15, 7);
  DecisionTree full = OverfitTree(train);
  const std::vector<double> alphas = CostComplexityAlphas(full);
  ASSERT_FALSE(alphas.empty());
  for (size_t i = 1; i < alphas.size(); ++i) {
    EXPECT_LT(alphas[i - 1], alphas[i]);
  }
}

TEST(ReducedErrorTest, PrunesNoiseKeepsConcept) {
  const auto train = NoisyThresholdData(2000, 0.15, 8);
  const auto validation = NoisyThresholdData(1000, 0.15, 9);
  DecisionTree full = OverfitTree(train);
  DecisionTree pruned = PruneReducedError(full, validation);
  EXPECT_LT(pruned.num_nodes(), full.num_nodes());
  EXPECT_LE(pruned.MisclassificationRate(validation),
            full.MisclassificationRate(validation));
}

TEST(SelectByValidationTest, PicksTreeNoWorseThanFull) {
  const auto train = NoisyThresholdData(2000, 0.2, 10);
  const auto validation = NoisyThresholdData(1000, 0.2, 11);
  DecisionTree full = OverfitTree(train);
  DecisionTree best = SelectByValidation(full, validation);
  EXPECT_LE(best.MisclassificationRate(validation),
            full.MisclassificationRate(validation));
  EXPECT_LE(best.num_nodes(), full.num_nodes());
}

// ------------------------------------------------------------- evaluation

TEST(ConfusionMatrixTest, CountsAndMetrics) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0, 8);
  cm.Add(0, 1, 2);
  cm.Add(1, 1, 6);
  cm.Add(1, 0, 4);
  EXPECT_EQ(cm.total(), 20);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 14.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 8.0 / 10.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 6.0 / 10.0);
  EXPECT_NE(cm.ToString().find("actual"), std::string::npos);
}

TEST(ConfusionMatrixTest, EmptyDenominators) {
  ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(2), 0.0);
}

TEST(EvaluateTest, MatchesMisclassificationRate) {
  const auto train = NoisyThresholdData(1000, 0.0, 12);
  DecisionTree tree = OverfitTree(train);
  const auto test = NoisyThresholdData(500, 0.05, 13);
  const ConfusionMatrix cm = Evaluate(tree, test);
  EXPECT_NEAR(1.0 - cm.Accuracy(), tree.MisclassificationRate(test), 1e-12);
}

TEST(ConfusionMatrixTest, EmptyClassPrecisionRecall) {
  // Class 1 never occurs (neither as actual nor predicted) and class 2 is
  // predicted but never actual: all affected denominators must yield 0, not
  // NaN or a crash.
  ConfusionMatrix cm(3);
  cm.Add(0, 0, 5);
  cm.Add(0, 2, 3);  // class 2 predicted, never actual
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.0);  // never predicted
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);     // never actual
  EXPECT_DOUBLE_EQ(cm.Precision(2), 0.0);  // predicted 3, 0 correct
  EXPECT_DOUBLE_EQ(cm.Recall(2), 0.0);     // never actual
  EXPECT_DOUBLE_EQ(cm.Recall(0), 5.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 5.0 / 8.0);
}

TEST(ConfusionMatrixTest, SingleClassData) {
  // Every record has the same actual class and the classifier always
  // predicts it: accuracy / precision / recall are all 1, other classes 0.
  ConfusionMatrix cm(2);
  cm.Add(0, 0, 42);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 1.0);
  EXPECT_DOUBLE_EQ(cm.Precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
  EXPECT_EQ(cm.total(), 42);
}

TEST(EvaluateTest, SingleClassDatasetFillsOneRow) {
  // Training data with one observed label builds a single-leaf tree; the
  // evaluation of that tree must put every record on the diagonal.
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(Tuple({static_cast<double>(i)}, 0));
  }
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, data, *selector);
  const ConfusionMatrix cm = Evaluate(tree, data);
  EXPECT_EQ(cm.count(0, 0), 100);
  EXPECT_EQ(cm.count(1, 1), 0);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.0);
}

TEST(HoldoutSplitTest, DeterministicAcrossRunsWithSameSeed) {
  const auto data = NoisyThresholdData(500, 0.1, 21);
  Rng rng_a(77);
  Rng rng_b(77);
  auto [train_a, test_a] = HoldoutSplit(data, 0.25, &rng_a);
  auto [train_b, test_b] = HoldoutSplit(data, 0.25, &rng_b);
  EXPECT_EQ(train_a, train_b);
  EXPECT_EQ(test_a, test_b);

  // A different seed permutes differently (with overwhelming probability).
  Rng rng_c(78);
  auto [train_c, test_c] = HoldoutSplit(data, 0.25, &rng_c);
  EXPECT_EQ(train_c.size(), train_a.size());
  EXPECT_NE(train_a, train_c);
}

TEST(HoldoutSplitTest, SplitsByFraction) {
  Rng rng(1);
  auto [train, test] = HoldoutSplit(NoisyThresholdData(1000, 0, 14), 0.3,
                                    &rng);
  EXPECT_EQ(train.size(), 700u);
  EXPECT_EQ(test.size(), 300u);
}

TEST(CrossValidateTest, HighAccuracyOnSeparableData) {
  const auto data = NoisyThresholdData(2000, 0.0, 15);
  auto selector = MakeGiniSelector();
  Rng rng(2);
  const CrossValidationResult cv = CrossValidate(
      data, 5, &rng, [&](const std::vector<Tuple>& train) {
        return BuildTreeInMemory(XySchema(), train, *selector);
      });
  EXPECT_EQ(cv.folds.size(), 5u);
  EXPECT_GT(cv.mean_accuracy, 0.97);
  EXPECT_GE(cv.stddev_accuracy, 0.0);
}

TEST(CrossValidateTest, FoldsPartitionTheData) {
  const auto data = NoisyThresholdData(103, 0.0, 16);  // not divisible by k
  size_t total_test = 0;
  Rng rng(3);
  CrossValidate(data, 4, &rng, [&](const std::vector<Tuple>& train) {
    total_test += data.size() - train.size();
    auto selector = MakeGiniSelector();
    return BuildTreeInMemory(XySchema(), train, *selector);
  });
  EXPECT_EQ(total_test, data.size());  // each tuple tested exactly once
}

}  // namespace
}  // namespace boat
