// Unit tests for src/tree: tree structure, classification, the in-memory
// reference builder, and (de)serialization.

#include <gtest/gtest.h>

#include "datagen/agrawal.h"
#include "storage/temp_file.h"
#include "tree/inmem_builder.h"
#include "tree/serialize.h"

namespace boat {
namespace {

Schema SimpleSchema() {
  return Schema({Attribute::Numerical("x"), Attribute::Categorical("c", 3)},
                2);
}

DecisionTree HandBuiltTree() {
  // x <= 5 ? leaf(0) : (c in {0,2} ? leaf(1) : leaf(0))
  auto inner = TreeNode::Internal(
      Split::Categorical(1, {0, 2}, 0.1), {3, 4},
      TreeNode::Leaf({0, 4}), TreeNode::Leaf({3, 0}));
  auto root = TreeNode::Internal(Split::Numerical(0, 5.0, 0.2), {10, 4},
                                 TreeNode::Leaf({7, 0}), std::move(inner));
  return DecisionTree(SimpleSchema(), std::move(root));
}

TEST(TreeNodeTest, MajorityLabelBreaksTiesLow) {
  TreeNode node;
  node.class_counts = {3, 3, 2};
  EXPECT_EQ(node.MajorityLabel(), 0);
  node.class_counts = {1, 5, 5};
  EXPECT_EQ(node.MajorityLabel(), 1);
}

TEST(TreeNodeTest, CloneIsDeepAndEqual) {
  DecisionTree tree = HandBuiltTree();
  DecisionTree copy = tree.Clone();
  EXPECT_TRUE(tree.StructurallyEqual(copy));
  // Mutating the copy must not affect the original.
  copy.mutable_root()->split->value = 99.0;
  EXPECT_FALSE(tree.StructurallyEqual(copy));
}

TEST(DecisionTreeTest, ClassifyFollowsPredicates) {
  DecisionTree tree = HandBuiltTree();
  EXPECT_EQ(tree.Classify(Tuple({4.0, 1.0}, 0)), 0);  // left leaf
  EXPECT_EQ(tree.Classify(Tuple({6.0, 0.0}, 0)), 1);  // right, c in {0,2}
  EXPECT_EQ(tree.Classify(Tuple({6.0, 1.0}, 0)), 0);  // right, c not in
}

TEST(DecisionTreeTest, CountsAndDepth) {
  DecisionTree tree = HandBuiltTree();
  EXPECT_EQ(tree.num_nodes(), 5u);
  EXPECT_EQ(tree.num_leaves(), 3u);
  EXPECT_EQ(tree.depth(), 2);
}

TEST(DecisionTreeTest, MisclassificationRate) {
  DecisionTree tree = HandBuiltTree();
  std::vector<Tuple> data = {
      Tuple({4.0, 1.0}, 0),  // correct
      Tuple({6.0, 0.0}, 1),  // correct
      Tuple({6.0, 1.0}, 1),  // wrong (predicts 0)
      Tuple({1.0, 2.0}, 1),  // wrong (predicts 0)
  };
  EXPECT_DOUBLE_EQ(tree.MisclassificationRate(data), 0.5);
  EXPECT_DOUBLE_EQ(tree.MisclassificationRate({}), 0.0);
}

TEST(DecisionTreeTest, StructuralEqualityDetectsDifferences) {
  DecisionTree a = HandBuiltTree();
  DecisionTree b = HandBuiltTree();
  EXPECT_TRUE(a.StructurallyEqual(b));
  b.mutable_root()->split->value = 5.5;
  EXPECT_FALSE(a.StructurallyEqual(b));
}

TEST(DecisionTreeTest, ToStringMentionsSplits) {
  const std::string rendered = HandBuiltTree().ToString();
  EXPECT_NE(rendered.find("x <= 5"), std::string::npos);
  EXPECT_NE(rendered.find("c in {0,2}"), std::string::npos);
  EXPECT_NE(rendered.find("leaf label=0"), std::string::npos);
}

// -------------------------------------------------------------- InMemBuilder

TEST(InMemBuilderTest, PerfectlySeparableDataYieldsPureLeaves) {
  Schema schema({Attribute::Numerical("x")}, 2);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 20; ++i) tuples.push_back(Tuple({double(i)}, i < 10));
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, tuples, *selector);
  EXPECT_EQ(tree.num_leaves(), 2u);
  EXPECT_DOUBLE_EQ(tree.MisclassificationRate(tuples), 0.0);
}

TEST(InMemBuilderTest, RespectsMaxDepth) {
  AgrawalConfig config;
  config.function = 6;
  config.seed = 4;
  std::vector<Tuple> tuples = GenerateAgrawal(config, 2000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 3;
  DecisionTree tree =
      BuildTreeInMemory(MakeAgrawalSchema(), tuples, *selector, limits);
  EXPECT_LE(tree.depth(), 3);
}

TEST(InMemBuilderTest, RespectsStopFamilySize) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 5;
  std::vector<Tuple> tuples = GenerateAgrawal(config, 4000);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.stop_family_size = 1000;

  DecisionTree tree =
      BuildTreeInMemory(MakeAgrawalSchema(), tuples, *selector, limits);

  // Every leaf family must be <= 1000 or be unsplittable.
  std::function<void(const TreeNode&)> visit = [&](const TreeNode& n) {
    if (n.is_leaf()) return;
    EXPECT_GT(n.family_size(), 1000);
    visit(*n.left);
    visit(*n.right);
  };
  visit(tree.root());
}

TEST(InMemBuilderTest, EmptyDataYieldsSingleLeaf) {
  Schema schema({Attribute::Numerical("x")}, 2);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(schema, {}, *selector);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Classify(Tuple({1.0}, 0)), 0);
}

TEST(InMemBuilderTest, DeterministicAcrossRuns) {
  AgrawalConfig config;
  config.function = 7;
  config.noise = 0.05;
  config.seed = 6;
  std::vector<Tuple> tuples = GenerateAgrawal(config, 3000);
  auto selector = MakeGiniSelector();
  DecisionTree a = BuildTreeInMemory(MakeAgrawalSchema(), tuples, *selector);
  DecisionTree b = BuildTreeInMemory(MakeAgrawalSchema(), tuples, *selector);
  EXPECT_TRUE(a.StructurallyEqual(b));
}

TEST(InMemBuilderTest, LearnsAgrawalFunction1) {
  AgrawalConfig config;
  config.function = 1;
  config.seed = 8;
  std::vector<Tuple> train = GenerateAgrawal(config, 5000);
  config.seed = 9;
  std::vector<Tuple> test = GenerateAgrawal(config, 2000);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), train, *selector);
  EXPECT_LT(tree.MisclassificationRate(test), 0.02);
}

// ----------------------------------------------------------------- Serialize

TEST(SerializeTest, RoundTripHandBuilt) {
  DecisionTree tree = HandBuiltTree();
  const std::string doc = SerializeTree(tree);
  auto back = DeserializeTree(doc, SimpleSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(tree.StructurallyEqual(*back));
}

TEST(SerializeTest, RoundTripPreservesExactSplitValues) {
  // A value that does not round-trip through decimal printing.
  auto root = TreeNode::Internal(Split::Numerical(0, 0.1 + 0.2, 0.3), {1, 1},
                                 TreeNode::Leaf({1, 0}),
                                 TreeNode::Leaf({0, 1}));
  DecisionTree tree(SimpleSchema(), std::move(root));
  auto back = DeserializeTree(SerializeTree(tree), SimpleSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->root().split->value, 0.1 + 0.2);  // bit-exact
}

TEST(SerializeTest, RoundTripLargeLearnedTree) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = 0.05;
  config.seed = 10;
  std::vector<Tuple> tuples = GenerateAgrawal(config, 4000);
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(), tuples, *selector);
  auto back = DeserializeTree(SerializeTree(tree), MakeAgrawalSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(tree.StructurallyEqual(*back));
}

TEST(SerializeTest, RejectsWrongSchema) {
  DecisionTree tree = HandBuiltTree();
  const std::string doc = SerializeTree(tree);
  Schema other({Attribute::Numerical("z")}, 2);
  EXPECT_FALSE(DeserializeTree(doc, other).ok());
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTree("not a tree", SimpleSchema()).ok());
  EXPECT_FALSE(DeserializeTree("BOATTREE v1\nfingerprint zzz\n",
                               SimpleSchema())
                   .ok());
}

TEST(SerializeTest, SaveAndLoadFile) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const std::string path = temp->NewPath("tree");
  DecisionTree tree = HandBuiltTree();
  ASSERT_TRUE(SaveTree(tree, path).ok());
  auto back = LoadTree(path, SimpleSchema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(tree.StructurallyEqual(*back));
  EXPECT_FALSE(LoadTree(temp->dir() + "/missing", SimpleSchema()).ok());
}

}  // namespace
}  // namespace boat
