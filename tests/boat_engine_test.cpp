// Engine-level tests for BOAT: statistics accounting, the no-collection
// optimization and its repair path, deletion-induced tracker loss, the
// exact-coarse sampling mode, store sources, and model introspection.

#include <gtest/gtest.h>

#include "boat/builder.h"
#include "common/io_stats.h"
#include "datagen/agrawal.h"
#include "split/quest.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

std::vector<Tuple> F6Data(int n, double noise = 0.0, uint64_t seed = 2024) {
  AgrawalConfig config;
  config.function = 6;
  config.noise = noise;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

BoatOptions SmallOptions() {
  BoatOptions options;
  options.sample_size = 1000;
  options.bootstrap_count = 10;
  options.bootstrap_subsample = 400;
  options.inmem_threshold = 400;
  options.seed = 99;
  return options;
}

// ------------------------------------------------------ the options contract

TEST(BoatOptionsValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(BoatOptions().Validate().ok());
  EXPECT_TRUE(SmallOptions().Validate().ok());
}

TEST(BoatOptionsValidateTest, RejectsNonsenseConfigs) {
  const auto expect_invalid = [](BoatOptions options, const char* what) {
    const Status st = options.Validate();
    EXPECT_FALSE(st.ok()) << what;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << what;
  };
  BoatOptions o = SmallOptions();
  o.sample_size = 0;
  expect_invalid(o, "sample_size == 0");

  o = SmallOptions();
  o.bootstrap_subsample = o.sample_size + 1;
  expect_invalid(o, "subsample > sample");

  o = SmallOptions();
  o.bootstrap_count = 0;
  expect_invalid(o, "bootstrap_count == 0");

  o = SmallOptions();
  o.bootstrap_subsample = 0;
  expect_invalid(o, "bootstrap_subsample == 0");

  o = SmallOptions();
  o.num_threads = -1;
  expect_invalid(o, "num_threads < 0");

  o = SmallOptions();
  o.max_buckets_per_attr = 1;
  expect_invalid(o, "max_buckets_per_attr < 2");

  o = SmallOptions();
  o.inmem_threshold = -1;
  expect_invalid(o, "inmem_threshold < 0");

  o = SmallOptions();
  o.store_memory_budget = 0;
  expect_invalid(o, "store_memory_budget == 0");

  o = SmallOptions();
  o.bound_epsilon = -1e-9;
  expect_invalid(o, "bound_epsilon < 0");

  o = SmallOptions();
  o.max_recursion_depth = -1;
  expect_invalid(o, "max_recursion_depth < 0");

  o = SmallOptions();
  o.exact_rebuild_cap = -1;
  expect_invalid(o, "exact_rebuild_cap < 0");

  o = SmallOptions();
  o.limits.max_depth = -1;
  expect_invalid(o, "limits.max_depth < 0");

  o = SmallOptions();
  o.limits.min_tuples_to_split = 1;
  expect_invalid(o, "limits.min_tuples_to_split < 2");

  o = SmallOptions();
  o.limits.stop_family_size = -5;
  expect_invalid(o, "limits.stop_family_size < 0");
}

TEST(BoatOptionsValidateTest, TrainRejectsInvalidOptionsBeforeScanning) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(200);
  auto selector = MakeGiniSelector();
  BoatOptions options = SmallOptions();
  options.sample_size = 0;
  {
    VectorSource source(schema, data);
    auto classifier =
        BoatClassifier::Train(&source, selector.get(), options);
    ASSERT_FALSE(classifier.ok());
    EXPECT_EQ(classifier.status().code(), StatusCode::kInvalidArgument);
  }
  {
    VectorSource source(schema, data);
    options.sample_size = 100;
    options.bootstrap_subsample = 500;  // > sample_size
    auto tree = BuildTreeBoat(&source, *selector, options);
    ASSERT_FALSE(tree.ok());
    EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BoatEngineTest, ExactlyOneCleanupScanOnCleanBuild) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(5000);
  auto selector = MakeGiniSelector();
  VectorSource source(schema, data);
  BoatStats stats;
  auto tree = BuildTreeBoat(&source, *selector, SmallOptions(), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(stats.db_size, 5000u);
  // The top-level build performs exactly one cleanup scan; recursive
  // invocations (if any) add their own.
  EXPECT_GE(stats.cleanup_scans, 1u);
  EXPECT_EQ(stats.cleanup_scans, 1u + stats.frontier_recursive);
}

TEST(BoatEngineTest, StatsCountCoarseNodes) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(5000);
  auto selector = MakeGiniSelector();
  VectorSource source(schema, data);
  BoatStats stats;
  auto tree = BuildTreeBoat(&source, *selector, SmallOptions(), &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_GT(stats.coarse_nodes, 0u);
}

TEST(BoatEngineTest, PaperModeStopsAtThresholdAndCollectsNothingExtra) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(8000);
  auto selector = MakeGiniSelector();
  BoatOptions options = SmallOptions();
  options.inmem_threshold = 2000;
  options.limits.stop_family_size = 2000;

  DecisionTree reference =
      BuildTreeInMemory(schema, data, *selector, options.limits);

  ResetIoStats();
  VectorSource source(schema, data);
  auto tree = BuildTreeBoat(&source, *selector, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->StructurallyEqual(reference));
  // Stop-rule frontier families are not written out in paper mode; total
  // writes stay well below one copy of the database unless repairs or
  // kills occurred. (Soft check: no more than the database size.)
  EXPECT_LE(GetIoStats().tuples_written, 8000u);
}

TEST(BoatEngineTest, MisEstimatedFrontierIsRepairedExactly) {
  // A tiny sample makes frontier estimates unreliable; the no-collection
  // bet must be repaired by the extra scan, never produce a wrong tree.
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(6000, /*noise=*/0.1);
  auto selector = MakeGiniSelector();
  BoatOptions options;
  options.sample_size = 150;  // very unreliable estimates
  options.bootstrap_count = 5;
  options.bootstrap_subsample = 80;
  options.inmem_threshold = 1500;
  options.limits.stop_family_size = 1500;
  options.seed = 3;

  DecisionTree reference =
      BuildTreeInMemory(schema, data, *selector, options.limits);
  VectorSource source(schema, data);
  BoatStats stats;
  auto tree = BuildTreeBoat(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(BoatEngineTest, TinyInMemoryThresholdForcesRecursionAndStaysExact) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(6000, 0.05);
  auto selector = MakeGiniSelector();
  BoatOptions options = SmallOptions();
  options.sample_size = 300;
  options.bootstrap_subsample = 150;
  options.inmem_threshold = 100;  // almost nothing fits "in memory"
  options.limits.max_depth = 16;

  DecisionTree reference =
      BuildTreeInMemory(schema, data, *selector, options.limits);
  VectorSource source(schema, data);
  BoatStats stats;
  auto tree = BuildTreeBoat(&source, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(BoatEngineTest, DeletionOfBoundaryValuesStaysExact) {
  // Deleting every tuple that carries a node's boundary value vL forces the
  // extreme trackers into their "lost" state; verification must fail
  // conservatively and the rebuild must restore exactness.
  const Schema schema = MakeAgrawalSchema();
  auto all = F6Data(6000, 0.05, 7);
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 18;
  BoatOptions options = SmallOptions();
  options.limits = limits;
  options.enable_updates = true;

  VectorSource source(schema, all);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());

  // Find the root split value of the current tree and delete every tuple at
  // that exact value of that attribute.
  const TreeNode& root = (*classifier)->tree().root();
  ASSERT_FALSE(root.is_leaf());
  ASSERT_TRUE(root.split->is_numerical);
  const int attr = root.split->attribute;
  const double value = root.split->value;
  std::vector<Tuple> doomed;
  std::vector<Tuple> remaining;
  for (const Tuple& t : all) {
    (t.value(attr) == value ? doomed : remaining).push_back(t);
  }
  ASSERT_FALSE(doomed.empty());
  ASSERT_TRUE((*classifier)->DeleteChunk(doomed).ok());

  DecisionTree reference =
      BuildTreeInMemory(schema, remaining, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference));
}

TEST(BoatEngineTest, QuestIncrementalMatchesRebuild) {
  const Schema schema = MakeAgrawalSchema();
  auto base = F6Data(4000, 0.05, 11);
  auto chunk = F6Data(3000, 0.05, 12);
  QuestSelector selector;
  GrowthLimits limits;
  limits.max_depth = 14;
  BoatOptions options = SmallOptions();
  options.limits = limits;
  options.enable_updates = true;

  VectorSource source(schema, base);
  auto classifier = BoatClassifier::Train(&source, &selector, options);
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
  ASSERT_TRUE((*classifier)->InsertChunk(chunk).ok());

  std::vector<Tuple> all = base;
  all.insert(all.end(), chunk.begin(), chunk.end());
  DecisionTree reference = BuildTreeInMemory(schema, all, selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference));
}

TEST(BoatEngineTest, UpdatesRequireOptIn) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(2000);
  auto selector = MakeGiniSelector();
  VectorSource source(schema, data);
  auto classifier =
      BoatClassifier::Train(&source, selector.get(), SmallOptions());
  ASSERT_TRUE(classifier.ok());
  EXPECT_EQ((*classifier)->InsertChunk(F6Data(100)).code(),
            StatusCode::kNotSupported);
  EXPECT_EQ((*classifier)->DeleteChunk({data[0]}).code(),
            StatusCode::kNotSupported);
}

TEST(BoatEngineTest, ModelShapeDescribesTree) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(6000);
  auto selector = MakeGiniSelector();
  BoatOptions options = SmallOptions();
  options.enable_updates = true;
  VectorSource source(schema, data);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());
  const ModelShape shape =
      DescribeModel((*classifier)->engine().model_root());
  EXPECT_GT(shape.internal_nodes + shape.frontier_nodes, 0);
}

TEST(BoatEngineTest, EmptyDatabaseYieldsLeaf) {
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  VectorSource source(schema, {});
  auto tree = BuildTreeBoat(&source, *selector, SmallOptions());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
}

TEST(BoatEngineTest, SingleTupleDatabase) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(1);
  auto selector = MakeGiniSelector();
  VectorSource source(schema, data);
  auto tree = BuildTreeBoat(&source, *selector, SmallOptions());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_EQ(tree->Classify(data[0]), data[0].label());
}

TEST(BoatEngineTest, DeterministicForFixedSeed) {
  const Schema schema = MakeAgrawalSchema();
  auto data = F6Data(5000, 0.05);
  auto selector = MakeGiniSelector();
  VectorSource a(schema, data), b(schema, data);
  auto t1 = BuildTreeBoat(&a, *selector, SmallOptions());
  auto t2 = BuildTreeBoat(&b, *selector, SmallOptions());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // Determinism is stronger than the equality guarantee (which already
  // pins the tree): the run is bit-for-bit repeatable.
  EXPECT_TRUE(t1->StructurallyEqual(*t2));
}

TEST(BoatEngineTest, BuildOverNonMaterializedGenerator) {
  // The training database is a generator stream, never materialized.
  AgrawalConfig config;
  config.function = 1;
  config.seed = 77;
  AgrawalGenerator gen(config, 10000);
  auto selector = MakeGiniSelector();
  BoatOptions options = SmallOptions();
  options.inmem_threshold = 1500;
  options.limits.stop_family_size = 1500;
  BoatStats stats;
  auto tree = BuildTreeBoat(&gen, *selector, options, &stats);
  ASSERT_TRUE(tree.ok());
  DecisionTree reference = BuildTreeInMemory(
      MakeAgrawalSchema(), GenerateAgrawal(config, 10000), *selector,
      options.limits);
  EXPECT_TRUE(tree->StructurallyEqual(reference));
}

TEST(BoatEngineTest, ManySmallChunksStayExact) {
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();
  GrowthLimits limits;
  limits.max_depth = 14;
  BoatOptions options = SmallOptions();
  options.limits = limits;
  options.enable_updates = true;

  std::vector<Tuple> current = F6Data(3000, 0.05, 501);
  VectorSource source(schema, current);
  auto classifier = BoatClassifier::Train(&source, selector.get(), options);
  ASSERT_TRUE(classifier.ok());

  for (int i = 0; i < 8; ++i) {
    auto chunk = F6Data(250, 0.05, 600 + static_cast<uint64_t>(i));
    ASSERT_TRUE((*classifier)->InsertChunk(chunk).ok());
    current.insert(current.end(), chunk.begin(), chunk.end());
  }
  DecisionTree reference =
      BuildTreeInMemory(schema, current, *selector, limits);
  EXPECT_TRUE((*classifier)->tree().StructurallyEqual(reference));
}

TEST(StoreSourceTest, StreamsSpilledStoreWithTombstones) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  SpillableTupleStore store(schema, &*temp, "s", 4);  // tiny: forces spill
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.Append(Tuple({double(i)}, i % 2)).ok());
  }
  ASSERT_TRUE(store.RemoveOne(Tuple({3.0}, 1)).ok());  // tombstone in segment
  ASSERT_TRUE(store.spilled());

  auto source = store.MakeSource();
  std::multiset<double> seen;
  Tuple t;
  while (source->Next(&t)) seen.insert(t.value(0));
  EXPECT_EQ(seen.size(), 29u);
  EXPECT_EQ(seen.count(3.0), 0u);

  // Reset replays the same contents.
  ASSERT_TRUE(source->Reset().ok());
  size_t again = 0;
  while (source->Next(&t)) ++again;
  EXPECT_EQ(again, 29u);
}

TEST(StoreSourceTest, EmptyStore) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  Schema schema({Attribute::Numerical("x")}, 2);
  SpillableTupleStore store(schema, &*temp, "s", 4);
  auto source = store.MakeSource();
  Tuple t;
  EXPECT_FALSE(source->Next(&t));
}

}  // namespace
}  // namespace boat
