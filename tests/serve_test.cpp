// Serving subsystem tests: histogram and queue primitives, the wire
// protocol (including every malformed-input path — the server must answer
// a clean per-line ERR and never crash or poison a batch), the hot-swap
// model registry, and full end-to-end coverage of BoatServer over real
// sockets: correct labels, admin commands, half-closed connections,
// deterministic BUSY backpressure, graceful drain, and reload-under-load
// (run in CI under -DBOAT_SANITIZE=thread).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "boat/persistence.h"
#include "common/bounded_queue.h"
#include "common/histogram.h"
#include "datagen/agrawal.h"
#include "serve/loadgen.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "storage/temp_file.h"
#include "storage/tuple_source.h"
#include "tree/inmem_builder.h"

namespace boat {
namespace {

using serve::BoatServer;
using serve::ModelRegistry;
using serve::Reply;
using serve::Request;
using serve::ServableModel;
using serve::ServerOptions;
using serve::Verb;

// ------------------------------------------------------------ primitives

TEST(Log2HistogramTest, BucketsAndQuantiles) {
  EXPECT_EQ(Log2Histogram::BucketOf(0), 0);
  EXPECT_EQ(Log2Histogram::BucketOf(1), 1);
  EXPECT_EQ(Log2Histogram::BucketOf(2), 2);
  EXPECT_EQ(Log2Histogram::BucketOf(3), 2);
  EXPECT_EQ(Log2Histogram::BucketOf(4), 3);
  EXPECT_EQ(Log2Histogram::BucketOf(uint64_t{1} << 62),
            Log2Histogram::kNumBuckets - 1);
  EXPECT_EQ(Log2Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Log2Histogram::BucketUpperBound(3), 7u);

  Log2Histogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  for (int i = 0; i < 90; ++i) h.Record(3);    // bucket 2, upper bound 3
  for (int i = 0; i < 10; ++i) h.Record(100);  // bucket 7, upper bound 127
  EXPECT_EQ(h.TotalCount(), 100u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 3u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 127u);

  Log2Histogram other;
  other.Record(3);
  other.MergeFrom(h);
  EXPECT_EQ(other.TotalCount(), 101u);
  EXPECT_EQ(other.ToJson(), "[[3,91],[127,10]]");
}

TEST(BoundedQueueTest, CapacityAndClose) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: backpressure, not blocking
  EXPECT_EQ(q.size(), 2u);

  auto a = q.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_TRUE(q.TryPush(3));

  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed
  EXPECT_EQ(*q.Pop(), 2);      // drains remaining items...
  EXPECT_EQ(*q.Pop(), 3);
  EXPECT_FALSE(q.Pop().has_value());  // ...then reports end-of-stream
}

TEST(BoundedQueueTest, PopAllIntoDrainsInOrderUpToMax) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  std::vector<int> got;
  EXPECT_EQ(q.PopAllInto(&got, 3), 3u);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopAllInto(&got, 100), 2u);  // appends, never blocks
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.PopAllInto(&got, 100), 0u);  // empty queue: no-op
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BoundedQueueTest, PopBlocksUntilPushOrClose) {
  BoundedQueue<int> q(4);
  std::thread producer([&] { EXPECT_TRUE(q.TryPush(7)); });
  EXPECT_EQ(*q.Pop(), 7);
  producer.join();
  std::thread closer([&] { q.Close(); });
  EXPECT_FALSE(q.Pop().has_value());
  closer.join();
}

// ------------------------------------------------------------------ wire

Schema WireSchema() {
  return Schema({Attribute::Numerical("x"), Attribute::Categorical("c", 4),
                 Attribute::Numerical("y")},
                /*num_classes=*/2);
}

Verb VerbOf(const std::string& line) {
  auto request = serve::ParseRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  return request.ok() ? request->verb : Verb::kRecord;
}

TEST(WireTest, ParsesRequestVerbs) {
  EXPECT_EQ(VerbOf("1.5,2,3"), Verb::kRecord);
  EXPECT_EQ(VerbOf("-4,0,1"), Verb::kRecord);
  EXPECT_EQ(VerbOf("  7,1,2"), Verb::kRecord);
  EXPECT_EQ(VerbOf("STATS"), Verb::kStats);
  EXPECT_EQ(VerbOf("PING"), Verb::kPing);
  EXPECT_EQ(VerbOf("QUIT"), Verb::kQuit);
  EXPECT_EQ(VerbOf("RELOAD /m"), Verb::kReload);
  EXPECT_EQ(VerbOf("RETRAIN"), Verb::kRetrain);

  // A record request carries the raw line; RELOAD carries its argument.
  auto record = serve::ParseRequest("1.5,2,3");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->args, "1.5,2,3");
  EXPECT_EQ(record->payload_lines, 0);
  auto reload = serve::ParseRequest("RELOAD  /a/b ");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->args, "/a/b");

  // Unknown or malformed commands are errors, not silently records.
  EXPECT_FALSE(serve::ParseRequest("RELOADED").ok());
  EXPECT_FALSE(serve::ParseRequest("FROB").ok());
  EXPECT_FALSE(serve::ParseRequest("RELOAD").ok());  // needs a directory
  EXPECT_FALSE(serve::ParseRequest("STATS now").ok());
  EXPECT_FALSE(serve::ParseRequest("RETRAIN 3").ok());
}

TEST(WireTest, ParsesChunkCommands) {
  auto ingest = serve::ParseRequest("INGEST 128");
  ASSERT_TRUE(ingest.ok());
  EXPECT_EQ(ingest->verb, Verb::kIngest);
  EXPECT_EQ(ingest->payload_lines, 128);
  auto del = serve::ParseRequest("DELETE 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->verb, Verb::kDelete);
  EXPECT_EQ(del->payload_lines, 1);

  // Counts must be strictly positive integers, fully consumed.
  EXPECT_FALSE(serve::ParseRequest("INGEST").ok());
  EXPECT_FALSE(serve::ParseRequest("INGEST 0").ok());
  EXPECT_FALSE(serve::ParseRequest("INGEST -3").ok());
  EXPECT_FALSE(serve::ParseRequest("INGEST ten").ok());
  EXPECT_FALSE(serve::ParseRequest("INGEST 12x").ok());
  EXPECT_FALSE(serve::ParseRequest("DELETE 99999999999999999999").ok());
}

TEST(WireTest, ReplyFormatParseRoundTrip) {
  // FormatReply → ParseReply is a fixpoint for every reply kind; the
  // loadgen and SendChunk classify replies through exactly this path.
  const Reply replies[] = {
      Reply::Label(7),
      Reply::Ok("ingest queued seq 12 records 64"),
      Reply::Err("bad record"),
      Reply::Busy(),
      Reply::Pong(),
      Reply::Json("{\"served\":1}"),
  };
  for (const Reply& reply : replies) {
    const std::string line = serve::FormatReply(reply);
    const Reply parsed = serve::ParseReply(line);
    EXPECT_EQ(parsed.kind, reply.kind) << line;
    if (reply.kind == Reply::Kind::kLabel) {
      EXPECT_EQ(parsed.label, reply.label);
    }
  }
  // ParseReply is total: junk comes back as an error reply, never a crash.
  EXPECT_EQ(serve::ParseReply("whatever 1 2 3").kind, Reply::Kind::kErr);
  EXPECT_EQ(serve::ParseReply("").kind, Reply::Kind::kErr);
  EXPECT_EQ(serve::ParseReply("12").kind, Reply::Kind::kLabel);
  EXPECT_EQ(serve::ParseReply("12 extra").kind, Reply::Kind::kErr);
}

TEST(WireTest, ParsesValidRecord) {
  const Schema schema = WireSchema();
  auto t = serve::ParseRecordLine("1.25,3,-7.5", schema);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->value(0), 1.25);
  EXPECT_EQ(t->category(1), 3);
  EXPECT_EQ(t->value(2), -7.5);
}

TEST(WireTest, RejectsMalformedRecords) {
  const Schema schema = WireSchema();
  EXPECT_FALSE(serve::ParseRecordLine("1,2", schema).ok());  // arity
  EXPECT_FALSE(serve::ParseRecordLine("1,2,3,4", schema).ok());
  EXPECT_FALSE(serve::ParseRecordLine("1,notanum,3", schema).ok());
  EXPECT_FALSE(serve::ParseRecordLine("1,2.5,3", schema).ok());  // cat float
  EXPECT_FALSE(serve::ParseRecordLine("1,4,3", schema).ok());  // cat range
  EXPECT_FALSE(serve::ParseRecordLine("1,-1,3", schema).ok());
  EXPECT_FALSE(serve::ParseRecordLine("", schema).ok());
  EXPECT_FALSE(serve::ParseRecordLine(",,", schema).ok());
}

TEST(WireTest, FormatParseRoundTripIsExact) {
  const Schema schema = MakeAgrawalSchema();
  AgrawalConfig config;
  config.function = 5;
  config.seed = 91;
  const auto tuples = GenerateAgrawal(config, 500);
  const auto lines = serve::FormatRecordLines(schema, tuples);
  ASSERT_EQ(lines.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto parsed = serve::ParseRecordLine(lines[i], schema);
    ASSERT_TRUE(parsed.ok()) << lines[i];
    for (int a = 0; a < schema.num_attributes(); ++a) {
      // Bit-exact: %.17g guarantees strtod round-trips every double, which
      // is what makes served labels byte-identical to offline classify.
      EXPECT_EQ(parsed->value(a), tuples[i].value(a)) << lines[i];
    }
  }
}

// -------------------------------------------------------------- registry

std::vector<Tuple> Corpus(int function, uint64_t n, uint64_t seed) {
  AgrawalConfig config;
  config.function = function;
  config.noise = 0.05;
  config.seed = seed;
  return GenerateAgrawal(config, n);
}

std::shared_ptr<const ServableModel> InMemoryModel(int function,
                                                   uint64_t seed) {
  auto selector = MakeGiniSelector();
  DecisionTree tree = BuildTreeInMemory(MakeAgrawalSchema(),
                                        Corpus(function, 2000, seed),
                                        *selector);
  return std::make_shared<const ServableModel>(tree, "");
}

TEST(ModelRegistryTest, InstallAndSnapshot) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Snapshot(), nullptr);
  auto m1 = InMemoryModel(1, 11);
  auto m2 = InMemoryModel(6, 22);
  registry.Install(m1);
  EXPECT_EQ(registry.reload_count(), 0);
  EXPECT_EQ(registry.Snapshot()->fingerprint, m1->fingerprint);
  registry.Install(m2);
  EXPECT_EQ(registry.reload_count(), 1);
  EXPECT_NE(m1->fingerprint, m2->fingerprint);
  EXPECT_EQ(registry.Snapshot()->fingerprint, m2->fingerprint);
  // The old snapshot stays valid for holders (RCU-style reclamation).
  EXPECT_GT(m1->tree_nodes, 0u);
}

TEST(ModelRegistryTest, LoadAndSwapFailureKeepsActiveModel) {
  ModelRegistry registry;
  auto m1 = InMemoryModel(1, 33);
  registry.Install(m1);
  EXPECT_FALSE(registry.LoadAndSwap("/nonexistent/model", "gini").ok());
  EXPECT_EQ(registry.Snapshot()->fingerprint, m1->fingerprint);
  EXPECT_EQ(registry.reload_count(), 0);
}

// ------------------------------------------------------------ end-to-end

/// Minimal blocking line client with a receive timeout so a server bug
/// fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0)
        << std::strerror(errno);
    timeval tv{/*tv_sec=*/20, /*tv_usec=*/0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }
  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// One reply line ("" on timeout/EOF).
  std::string ReadLine() {
    size_t nl;
    while ((nl = buf_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
    std::string line = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line;
  }

  /// True once the server closed the connection.
  bool ReadEof() {
    char chunk[256];
    return ::recv(fd_, chunk, sizeof(chunk), 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

class ServeE2eTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    model_ = InMemoryModel(6, 77);
    registry_.Install(model_);
    server_ = std::make_unique<BoatServer>(&registry_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  std::string ExpectedLabel(const Tuple& t) const {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%d", model_->compiled.Classify(t));
    return buf;
  }

  std::shared_ptr<const ServableModel> model_;
  ModelRegistry registry_;
  std::unique_ptr<BoatServer> server_;
};

TEST_F(ServeE2eTest, ServesCorrectLabelsAndAdminCommands) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 300, 123);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  client.Send("PING\n");
  EXPECT_EQ(client.ReadLine(), "PONG");
  for (size_t i = 0; i < lines.size(); ++i) {
    client.Send(lines[i] + "\n");
    EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[i])) << "record " << i;
  }
  client.Send("STATS\n");
  const std::string stats = client.ReadLine();
  EXPECT_NE(stats.find("\"requests\":300"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"model\":{\"fingerprint\":"), std::string::npos);
  client.Send("QUIT\n");
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(ServeE2eTest, PipelinedBatchIsOrderedAndCorrect) {
  ServerOptions options;
  options.max_batch = 64;
  StartServer(options);
  const auto tuples = Corpus(6, 500, 321);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  std::string all;
  for (const auto& line : lines) all += line + "\n";
  client.Send(all);
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[i])) << "record " << i;
  }
}

TEST_F(ServeE2eTest, MalformedLinesGetErrWithoutPoisoningTheBatch) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 4, 55);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  // Interleave good records with every malformed shape in one pipeline.
  client.Send(lines[0] + "\n" +
              "1,2,3\n" +                      // arity mismatch
              lines[1] + "\n" +
              "zzz\n" +                        // unknown command
              "\n" +                           // empty line
              lines[2] + "\n" +
              "nope,1,1,1,1,1,1,1,1\n" +       // bad field
              lines[3] + "\n");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[0]));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[1]));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[2]));
  EXPECT_EQ(client.ReadLine().substr(0, 3), "ERR");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[3]));
}

TEST_F(ServeE2eTest, OversizedLineGetsErrAndConnectionSurvives) {
  ServerOptions options;
  options.max_line_bytes = 128;
  StartServer(options);
  const auto tuples = Corpus(6, 1, 66);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  client.Send(std::string(300, '1') + "\n" + lines[0] + "\n");
  EXPECT_EQ(client.ReadLine(), "ERR line too long");
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[0]));
}

TEST_F(ServeE2eTest, HalfClosedConnectionDrainsCleanly) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 3, 88);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  // Final line unterminated; the handler must still answer it after EOF.
  client.Send(lines[0] + "\n" + lines[1] + "\n" + lines[2]);
  client.ShutdownWrite();
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[0]));
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[1]));
  EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[2]));
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(ServeE2eTest, FullQueueYieldsBusyNotUnboundedMemory) {
  ServerOptions options;
  options.queue_capacity = 4;
  options.scoring_threads = 1;
  options.max_batch = 64;
  StartServer(options);
  const auto tuples = Corpus(6, 8, 99);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  server_->SetScoringPausedForTest(true);
  // First record: the (sole) worker pops it off the queue and then blocks
  // on the pause gate, leaving the queue empty and stable.
  TestClient held(server_->port());
  held.Send(lines[0] + "\n");
  TestClient admin(server_->port());
  for (int spin = 0; spin < 200; ++spin) {
    admin.Send("STATS\n");
    const std::string stats = admin.ReadLine();
    if (stats.find("\"requests\":1,") != std::string::npos &&
        stats.find("\"queue_depth\":0,") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Now exactly queue_capacity more records fit; the rest must get BUSY.
  TestClient flood(server_->port());
  std::string burst;
  for (size_t i = 1; i < 8; ++i) burst += lines[i] + "\n";
  flood.Send(burst);
  // Admission happens on the handler thread; wait until it has processed
  // the whole burst (4 enqueued + 3 BUSY) before letting the worker drain,
  // or a fast worker could free queue slots mid-burst and admit extras.
  for (int spin = 0; spin < 200; ++spin) {
    admin.Send("STATS\n");
    const std::string stats = admin.ReadLine();
    if (stats.find("\"busy\":3,") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server_->SetScoringPausedForTest(false);

  EXPECT_EQ(held.ReadLine(), ExpectedLabel(tuples[0]));
  for (size_t i = 1; i <= 4; ++i) {
    EXPECT_EQ(flood.ReadLine(), ExpectedLabel(tuples[i])) << "record " << i;
  }
  for (size_t i = 5; i < 8; ++i) {
    EXPECT_EQ(flood.ReadLine(), "BUSY") << "record " << i;
  }
}

TEST_F(ServeE2eTest, ShutdownDrainsIdleConnections) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 10, 44);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  for (size_t i = 0; i < lines.size(); ++i) {
    client.Send(lines[i] + "\n");
    EXPECT_EQ(client.ReadLine(), ExpectedLabel(tuples[i]));
  }
  // The connection is idle but open; Shutdown must not hang on it and the
  // client must observe a clean close.
  server_->Shutdown();
  EXPECT_TRUE(client.ReadEof());
}

// Regression for a lifecycle race the thread-safety sweep surfaced: the
// seed Shutdown() gated on a stopping_ CAS and returned immediately for
// every caller but the first — so a destructor racing an explicit
// Shutdown() could tear the server down (or two callers join the same
// std::thread, which is UB) while the winner was still mid-drain. Callers
// now serialize on lifecycle_mu_ and each returns only once the drain is
// complete: after ANY Shutdown() returns, the admitted requests must have
// been answered and the connection closed. TSan CI runs this binary, so
// the old unsynchronized join would also be flagged dynamically.
TEST_F(ServeE2eTest, ConcurrentShutdownCallsAreSerialized) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 20, 29);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);

  TestClient client(server_->port());
  std::string all;
  for (const auto& line : lines) all += line + "\n";
  client.Send(all);

  constexpr int kCallers = 4;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int i = 0; i < kCallers; ++i) {
    callers.emplace_back([&] { server_->Shutdown(); });
  }
  callers[0].join();
  // Any returned caller implies the drain finished. The shutdown races the
  // client's pipelined bytes, so the server owes replies only to the prefix
  // it had received when the read sides were half-closed — but that prefix
  // must be answered in order, correctly, and then closed cleanly.
  size_t replied = 0;
  for (std::string line; !(line = client.ReadLine()).empty(); ++replied) {
    ASSERT_LT(replied, tuples.size());
    EXPECT_EQ(line, ExpectedLabel(tuples[replied])) << "record " << replied;
  }
  EXPECT_TRUE(client.ReadEof());
  for (int i = 1; i < kCallers; ++i) callers[i].join();
  server_.reset();  // destructor's Shutdown must also be a clean no-op
}

TEST_F(ServeE2eTest, LoadGenAgainstServerChecksEveryLabel) {
  StartServer(ServerOptions{});
  const auto tuples = Corpus(6, 400, 7);
  const auto lines = serve::FormatRecordLines(model_->schema, tuples);
  std::vector<int32_t> expected;
  expected.reserve(tuples.size());
  for (const Tuple& t : tuples) expected.push_back(model_->compiled.Classify(t));

  serve::LoadGenOptions options;
  options.port = server_->port();
  options.connections = 3;
  options.repeat = 2;
  auto report = serve::RunLoadGen(options, lines, &expected);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sent, 400u * 3u * 2u);
  EXPECT_EQ(report->ok, report->sent);
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->busy, 0u);
  EXPECT_EQ(report->errors, 0u);
}

// Hot reload under live traffic: every reply must be a label that is valid
// under exactly the old or the new model (no torn batch may mix per-tuple
// models mid-prediction into something neither model would say), with zero
// connection errors. CI additionally runs this whole binary under TSan.
TEST(ServeReloadTest, ReloadUnderLoadNeverServesInvalidLabels) {
  auto temp = TempFileManager::Create();
  ASSERT_TRUE(temp.ok());
  const Schema schema = MakeAgrawalSchema();
  auto selector = MakeGiniSelector();

  // Two saved models with the same schema but different trees.
  std::vector<std::string> dirs;
  for (const int function : {1, 6}) {
    auto data = Corpus(function, 3000, 500 + static_cast<uint64_t>(function));
    VectorSource source(schema, data);
    BoatOptions options;
    options.sample_size = 600;
    options.bootstrap_count = 5;
    options.bootstrap_subsample = 200;
    options.inmem_threshold = 400;
    options.seed = 9;
    auto classifier =
        BoatClassifier::Train(&source, selector.get(), options);
    ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
    const std::string dir =
        temp->NewPath("serve_model_" + std::to_string(function));
    ASSERT_TRUE(SaveClassifier(**classifier, dir).ok());
    dirs.push_back(dir);
  }

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadAndSwap(dirs[0], "gini").ok());
  ServerOptions options;
  options.scoring_threads = 2;
  BoatServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  const auto tuples = Corpus(6, 200, 888);
  const auto lines = serve::FormatRecordLines(schema, tuples);
  // Per-record label sets valid under {model A, model B}.
  std::vector<std::array<std::string, 2>> valid(tuples.size());
  for (size_t d = 0; d < dirs.size(); ++d) {
    auto model = serve::LoadServableModel(dirs[d], "gini");
    ASSERT_TRUE(model.ok());
    for (size_t i = 0; i < tuples.size(); ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%d",
                    (*model)->compiled.Classify(tuples[i]));
      valid[i][d] = buf;
    }
  }

  std::atomic<int> bad_replies{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      TestClient client(server.port());
      for (int pass = 0; pass < 10; ++pass) {
        std::string burst;
        for (const auto& line : lines) burst += line + "\n";
        client.Send(burst);
        for (size_t i = 0; i < lines.size(); ++i) {
          const std::string reply = client.ReadLine();
          if (reply.empty()) {
            transport_errors.fetch_add(1);
            return;
          }
          if (reply != valid[i][0] && reply != valid[i][1]) {
            bad_replies.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread reloader([&] {
    TestClient admin(server.port());
    for (int r = 0; r < 8; ++r) {
      admin.Send("RELOAD " + dirs[static_cast<size_t>(r % 2 == 0)] + "\n");
      const std::string reply = admin.ReadLine();
      if (reply.substr(0, 2) != "OK") transport_errors.fetch_add(1);
    }
  });
  for (auto& t : clients) t.join();
  reloader.join();
  server.Shutdown();

  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_GE(registry.reload_count(), 8);
}

}  // namespace
}  // namespace boat
